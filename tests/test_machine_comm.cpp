// The simulated machine (virtual time, mailbox matching, topologies) and
// the structured collective library (transfer, multicast, shifts,
// concatenation, reductions) — paper §5.1 and the S11 substrate.
#include <gtest/gtest.h>

#include <numeric>

#include "comm/grid_comm.hpp"
#include "machine/mailbox.hpp"
#include "machine/topology.hpp"

namespace f90d {
namespace {

using machine::CostModel;
using machine::Proc;
using machine::SimMachine;

TEST(Topology, HypercubeHopsAreHammingDistance) {
  machine::Hypercube h;
  EXPECT_EQ(h.hops(0, 0), 0);
  EXPECT_EQ(h.hops(0, 1), 1);
  EXPECT_EQ(h.hops(0, 3), 2);
  EXPECT_EQ(h.hops(5, 10), 4);  // 0101 vs 1010
  machine::Mesh2D mesh(4);
  EXPECT_EQ(mesh.hops(0, 5), 2);  // (0,0)->(1,1)
  EXPECT_EQ(mesh.hops(3, 12), 6);
}

TEST(ProcGrid, GrayCodeEmbeddingIsBijective) {
  comm::ProcGrid grid({4, 4});
  std::vector<int> seen(16, 0);
  for (int l = 0; l < 16; ++l) {
    const int phys = grid.phys_of(l);
    ASSERT_GE(phys, 0);
    ASSERT_LT(phys, 16);
    seen[static_cast<size_t>(phys)] += 1;
    EXPECT_EQ(grid.logical_of_phys(phys), l);
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(ProcGrid, GrayCodeNeighborsAreOneHopApart) {
  comm::ProcGrid grid({16});
  machine::Hypercube h;
  for (int l = 0; l + 1 < 16; ++l)
    EXPECT_EQ(h.hops(grid.phys_of(l), grid.phys_of(l + 1)), 1)
        << "logical neighbours " << l << "," << l + 1;
}

TEST(ProcGrid, CoordsRoundTrip) {
  comm::ProcGrid grid({2, 3, 4});
  for (int l = 0; l < grid.size(); ++l)
    EXPECT_EQ(grid.linear_of(grid.coords_of(l)), l);
}

TEST(SimMachine, VirtualTimeFollowsHockneyModel) {
  CostModel cm = CostModel::ipsc860();
  SimMachine m(2, cm, machine::make_hypercube());
  auto r = m.run([&](Proc& p) {
    if (p.rank() == 0) {
      const double payload[4] = {1, 2, 3, 4};
      p.send_bytes(1, 7, payload, sizeof(payload));
    } else {
      auto v = p.recv_vec<double>(0, 7);
      ASSERT_EQ(v.size(), 4u);
      EXPECT_DOUBLE_EQ(v[2], 3.0);
    }
  });
  const double expect = cm.msg_latency + 32 * cm.time_per_byte;
  EXPECT_NEAR(r.proc_times[0], expect, 1e-12);  // sender injection
  EXPECT_NEAR(r.proc_times[1], expect, 1e-12);  // one hop: no extra delay
  EXPECT_EQ(r.total_messages(), 1u);
  EXPECT_EQ(r.total_bytes(), 32u);
}

TEST(SimMachine, MultiHopAddsPerHopCost) {
  CostModel cm = CostModel::ipsc860();
  SimMachine m(8, cm, machine::make_hypercube());
  auto r = m.run([&](Proc& p) {
    if (p.rank() == 0) p.send_value<int>(7, 1, 42);   // 3 hops on a cube
    if (p.rank() == 7) {
      EXPECT_EQ((p.recv_value<int>(0, 1)), 42);
    }
  });
  const double inject = cm.msg_latency + 4 * cm.time_per_byte;
  EXPECT_NEAR(r.proc_times[7], inject + 2 * cm.time_per_hop, 1e-12);
}

TEST(SimMachine, MessageOrderPreservedPerSourceAndTag) {
  SimMachine m(2, CostModel::ideal(), machine::make_crossbar());
  m.run([&](Proc& p) {
    if (p.rank() == 0) {
      for (int k = 0; k < 10; ++k) p.send_value<int>(1, 5, k);
    } else {
      for (int k = 0; k < 10; ++k)
        EXPECT_EQ((p.recv_value<int>(0, 5)), k);
    }
  });
}

TEST(SimMachine, ExceptionsInNodeProgramsPropagate) {
  SimMachine m(2, CostModel::ideal(), machine::make_crossbar());
  EXPECT_THROW(m.run([&](Proc& p) {
                 if (p.rank() == 1) throw RtsError("boom");
                 // rank 0 does not block on anything.
               }),
               RtsError);
}

// --- collectives -------------------------------------------------------------

class CommProcs : public ::testing::TestWithParam<int> {};

TEST_P(CommProcs, BcastAllDeliversFromEveryRoot) {
  const int p = GetParam();
  SimMachine m(p, CostModel::ipsc860(), machine::make_hypercube());
  m.run([&](Proc& proc) {
    comm::GridComm gc(proc, comm::ProcGrid({p}));
    for (int root = 0; root < p; ++root) {
      std::vector<double> data;
      if (gc.my_logical() == root) data = {1.5 * root, 2.5};
      gc.bcast_all(root, data);
      ASSERT_EQ(data.size(), 2u);
      EXPECT_DOUBLE_EQ(data[0], 1.5 * root);
    }
  });
}

TEST_P(CommProcs, AllreduceSums) {
  const int p = GetParam();
  SimMachine m(p, CostModel::ipsc860(), machine::make_hypercube());
  m.run([&](Proc& proc) {
    comm::GridComm gc(proc, comm::ProcGrid({p}));
    std::vector<long long> v{gc.my_logical() + 1LL, 1LL};
    gc.allreduce(v, [](long long a, long long b) { return a + b; });
    EXPECT_EQ(v[0], 1LL * p * (p + 1) / 2);
    EXPECT_EQ(v[1], p);
  });
}

TEST_P(CommProcs, ConcatAllOrdersByLogicalRank) {
  const int p = GetParam();
  SimMachine m(p, CostModel::ipsc860(), machine::make_hypercube());
  m.run([&](Proc& proc) {
    comm::GridComm gc(proc, comm::ProcGrid({p}));
    std::vector<int> mine{gc.my_logical() * 10, gc.my_logical() * 10 + 1};
    auto all = gc.concat_all<int>(mine);
    ASSERT_EQ(all.size(), static_cast<size_t>(2 * p));
    for (int q = 0; q < p; ++q) {
      EXPECT_EQ(all[static_cast<size_t>(2 * q)], q * 10);
      EXPECT_EQ(all[static_cast<size_t>(2 * q + 1)], q * 10 + 1);
    }
  });
}

TEST_P(CommProcs, ConcatTreeCollectsEverything) {
  const int p = GetParam();
  SimMachine m(p, CostModel::ipsc860(), machine::make_hypercube());
  m.run([&](Proc& proc) {
    comm::GridComm gc(proc, comm::ProcGrid({p}));
    std::vector<int> data{gc.my_logical()};
    gc.concat_tree(data);
    ASSERT_EQ(data.size(), static_cast<size_t>(p));
    long long sum = std::accumulate(data.begin(), data.end(), 0LL);
    EXPECT_EQ(sum, 1LL * p * (p - 1) / 2);
  });
}

TEST_P(CommProcs, ShiftExchangeCircularAndOpen) {
  const int p = GetParam();
  SimMachine m(p, CostModel::ipsc860(), machine::make_hypercube());
  m.run([&](Proc& proc) {
    comm::GridComm gc(proc, comm::ProcGrid({p}));
    std::vector<int> mine{gc.my_logical()};
    auto from_left = gc.shift_exchange<int>(0, +1, mine, /*circular=*/true);
    ASSERT_EQ(from_left.size(), 1u);
    EXPECT_EQ(from_left[0], (gc.my_logical() - 1 + p) % p);
    auto open = gc.shift_exchange<int>(0, +1, mine, /*circular=*/false);
    if (gc.my_logical() == 0) {
      EXPECT_TRUE(open.empty());
    } else {
      ASSERT_EQ(open.size(), 1u);
      EXPECT_EQ(open[0], gc.my_logical() - 1);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, CommProcs, ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(GridComm, MulticastAlongOneDimensionOnly) {
  SimMachine m(8, CostModel::ipsc860(), machine::make_hypercube());
  m.run([&](Proc& proc) {
    comm::GridComm gc(proc, comm::ProcGrid({2, 4}));
    // Broadcast along dim 1 from column 2: payload identifies the row.
    std::vector<int> data;
    if (gc.coord(1) == 2) data = {gc.coord(0) * 100};
    gc.multicast(1, 2, data);
    ASSERT_EQ(data.size(), 1u);
    EXPECT_EQ(data[0], gc.coord(0) * 100);  // rows stay separate
  });
}

TEST(GridComm, TransferMovesLineToLine) {
  SimMachine m(8, CostModel::ipsc860(), machine::make_hypercube());
  m.run([&](Proc& proc) {
    comm::GridComm gc(proc, comm::ProcGrid({2, 4}));
    std::vector<int> payload{gc.coord(0) + 7};
    std::vector<int> out;
    const bool got = gc.transfer<int>(1, /*src=*/3, /*dest=*/1, payload, out);
    EXPECT_EQ(got, gc.coord(1) == 1);
    if (got) {
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(out[0], gc.coord(0) + 7);  // from the same row
    }
  });
}

TEST(GridComm, BroadcastIsLogPDepth) {
  // Virtual-time check of the tree: time grows ~log2(P), not ~P.
  auto bcast_time = [](int p) {
    SimMachine m(p, CostModel::ipsc860(), machine::make_hypercube());
    auto r = m.run([&](Proc& proc) {
      comm::GridComm gc(proc, comm::ProcGrid({p}));
      std::vector<double> data;
      if (gc.my_logical() == 0) data.assign(1024, 1.0);
      gc.bcast_all(0, data);
    });
    return r.exec_time;
  };
  const double t4 = bcast_time(4);
  const double t16 = bcast_time(16);
  // log2(16)/log2(4) = 2: allow generous slack but reject linear growth (4x).
  EXPECT_LT(t16, t4 * 3.0);
  EXPECT_GT(t16, t4 * 1.2);
}

// --- mailbox matching rule ---------------------------------------------------

machine::Message msg(int src, int tag, double arrival) {
  machine::Message m;
  m.src = src;
  m.tag = tag;
  m.arrival = arrival;
  return m;
}

TEST(Mailbox, WildcardMatchesMinimumArrivalNotPushOrder) {
  // Regression: pop_match used to scan in push order, so a kAnySource
  // receive could take a message that arrives *later* in virtual time.
  machine::Mailbox box;
  box.push(msg(2, 7, 5.0));
  box.push(msg(1, 7, 3.0));
  box.push(msg(0, 7, 4.0));
  auto first = box.try_pop_match(machine::kAnySource, machine::kAnyTag);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->src, 1);
  EXPECT_EQ(box.try_pop_match(machine::kAnySource, 7)->src, 0);
  EXPECT_EQ(box.try_pop_match(machine::kAnySource, 7)->src, 2);
  EXPECT_FALSE(box.try_pop_match(machine::kAnySource, machine::kAnyTag));
}

TEST(Mailbox, ArrivalTiesBreakBySourceThenPushSequence) {
  machine::Mailbox box;
  box.push(msg(3, 1, 2.0));
  box.push(msg(1, 1, 2.0));  // same arrival, lower src: wins
  box.push(msg(1, 2, 2.0));  // same arrival and src, pushed later
  EXPECT_EQ(box.try_pop_match(machine::kAnySource, machine::kAnyTag)->tag, 1);
  EXPECT_EQ(box.try_pop_match(machine::kAnySource, machine::kAnyTag)->tag, 2);
  EXPECT_EQ(box.try_pop_match(machine::kAnySource, machine::kAnyTag)->src, 3);
}

TEST(Mailbox, TagAndSourceFiltersApplyBeforeArrivalSelection) {
  machine::Mailbox box;
  box.push(msg(0, 1, 1.0));
  box.push(msg(1, 2, 9.0));
  // The earliest message does not match tag 2; the filter must win.
  EXPECT_EQ(box.try_pop_match(machine::kAnySource, 2)->arrival, 9.0);
  EXPECT_FALSE(box.try_pop_match(1, machine::kAnyTag));
  EXPECT_EQ(box.try_pop_match(0, 1)->arrival, 1.0);
}

TEST(Mailbox, ProbeAndPeekAgreeWithPopUnderTheSameRule) {
  machine::Mailbox box;
  EXPECT_FALSE(box.probe(machine::kAnySource, machine::kAnyTag));
  EXPECT_EQ(box.peek_match(machine::kAnySource, machine::kAnyTag), nullptr);
  box.push(msg(2, 5, 4.0));
  box.push(msg(1, 5, 2.0));
  EXPECT_TRUE(box.probe(machine::kAnySource, 5));
  EXPECT_FALSE(box.probe(machine::kAnySource, 6));
  const machine::Message* peeked =
      box.peek_match(machine::kAnySource, machine::kAnyTag);
  ASSERT_NE(peeked, nullptr);
  auto popped = box.try_pop_match(machine::kAnySource, machine::kAnyTag);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->src, 1);
  EXPECT_EQ(popped->arrival, 2.0);
}

TEST(Mailbox, PoisonSticksToTheFirstReason) {
  machine::Mailbox box;
  EXPECT_FALSE(box.poisoned());
  box.poison("rank 3 threw");
  box.poison("deadlock");  // later reasons are ignored
  EXPECT_TRUE(box.poisoned());
  EXPECT_EQ(box.poison_reason(), "rank 3 threw");
}

TEST(Topology, FatTreeHopsByHostEdgeAndPod) {
  machine::FatTree ft(4, 2);  // 4 hosts per edge switch, 2 edges per pod
  EXPECT_EQ(ft.hops(0, 0), 0);  // same host
  EXPECT_EQ(ft.hops(0, 3), 2);  // same edge switch
  EXPECT_EQ(ft.hops(0, 4), 4);  // same pod, different edge switch
  EXPECT_EQ(ft.hops(0, 8), 6);  // different pod, through the core
  EXPECT_EQ(ft.hops(13, 12), 2);
}

}  // namespace
}  // namespace f90d
