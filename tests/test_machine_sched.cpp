// The event-driven SimMachine backend and its failure semantics:
//  - both backends (fiber event loop vs one OS thread per proc) produce
//    bit-identical array results and identical simulated times,
//  - a node-program exception poisons the mailboxes so blocked peers unwind
//    (the historical `t.join()` hang),
//  - a communication deadlock (mismatched send/recv) fails with a per-proc
//    wait-state report instead of hanging,
//  - 32x32 and 1024-processor machines are cheap enough for routine tests.
#include <gtest/gtest.h>

#include <chrono>
#include <span>
#include <thread>

#include "apps/gauss_hand.hpp"
#include "apps/sources.hpp"
#include "harness.hpp"
#include "interp/interp.hpp"
#include "machine/profiles.hpp"
#include "machine/topology.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define F90D_TEST_SANITIZED 1
#endif
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define F90D_TEST_SANITIZED 1
#endif

namespace f90d {
namespace {

#ifdef F90D_TEST_SANITIZED
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

using machine::Backend;
using machine::CostModel;
using machine::DeadlockError;
using machine::MachineOptions;
using machine::Proc;
using machine::SimMachine;

MachineOptions opts(Backend b) {
  MachineOptions mo;
  mo.backend = b;
  return mo;
}

SimMachine ipsc_machine(int p, Backend b) {
  return SimMachine(p, CostModel::ipsc860(), machine::make_hypercube(),
                    opts(b));
}

// --- backend-parameterized failure semantics ---------------------------------

class Backends : public ::testing::TestWithParam<Backend> {};

TEST_P(Backends, ThrowOnRank0MidExchangeUnblocksPeers) {
  // Regression: rank 0 of a 2x2 grid throws mid-exchange while ranks 2 and 3
  // are blocked in recv on it.  The old threaded backend left the peers
  // parked in an untimed cv wait and run() hung in join(); now every mailbox
  // is poisoned, the peers unwind, and the original error is rethrown.
  SimMachine m(4, CostModel::ideal(), machine::make_crossbar(),
               opts(GetParam()));
  try {
    m.run([&](Proc& p) {
      if (p.rank() == 0) {
        p.send_value<int>(1, 9, 41);
        throw RtsError("boom on rank 0 mid-exchange");
      }
      (void)p.recv_value<int>(0, 9);  // only rank 1 is ever served
      if (p.rank() == 1) return;
    });
    FAIL() << "expected the rank-0 error to propagate";
  } catch (const RtsError& e) {
    EXPECT_NE(std::string(e.what()).find("boom on rank 0"), std::string::npos);
  }
}

TEST_P(Backends, MismatchedTagsDeadlockFailsWithWaitReport) {
  // A cyclic wait from a hand-written node program: both sides send tag 1
  // but wait for tag 2.  Must fail with a diagnostic, not hang.
  SimMachine m(2, CostModel::ideal(), machine::make_crossbar(),
               opts(GetParam()));
  try {
    m.run([&](Proc& p) {
      p.send_value<int>(1 - p.rank(), 1, 7);
      (void)p.recv_value<int>(1 - p.rank(), 2);
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock detected"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0: blocked in recv(src=1, tag=2)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("rank 1: blocked in recv(src=0, tag=2)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("1 queued message(s)"), std::string::npos) << what;
  }
}

TEST_P(Backends, SelfDeadlockOnOneProcessorIsDetected) {
  SimMachine m(1, CostModel::ideal(), machine::make_crossbar(),
               opts(GetParam()));
  EXPECT_THROW(m.run([&](Proc& p) { (void)p.recv(0, 5); }), DeadlockError);
}

TEST_P(Backends, PeerFinishingWithoutSendingIsADeadlock) {
  // Rank 1 returns without ever sending what rank 0 waits for: all *live*
  // processors are blocked, which must be flagged just like a cyclic wait.
  SimMachine m(2, CostModel::ideal(), machine::make_crossbar(),
               opts(GetParam()));
  try {
    m.run([&](Proc& p) {
      if (p.rank() == 0) (void)p.recv(1, 5);
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 0: blocked in recv(src=1, tag=5)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("rank 1: finished"), std::string::npos) << what;
  }
}

TEST_P(Backends, ZeroByteMessagesDeliver) {
  SimMachine m(2, CostModel::ipsc860(), machine::make_hypercube(),
               opts(GetParam()));
  auto r = m.run([&](Proc& p) {
    if (p.rank() == 0) {
      p.send_bytes(1, 3, nullptr, 0);
    } else {
      machine::Message msg = p.recv(0, 3);
      EXPECT_EQ(msg.bytes(), 0u);
      EXPECT_EQ(msg.src, 0);
    }
  });
  EXPECT_EQ(r.total_messages(), 1u);
  EXPECT_EQ(r.total_bytes(), 0u);
}

TEST_P(Backends, SelfSendIsNotADeadlock) {
  SimMachine m(2, CostModel::ipsc860(), machine::make_hypercube(),
               opts(GetParam()));
  m.run([&](Proc& p) {
    p.send_value<int>(p.rank(), 4, 100 + p.rank());
    EXPECT_EQ((p.recv_value<int>(p.rank(), 4)), 100 + p.rank());
  });
}

TEST_P(Backends, ProbeSeesQueuedMessagesUnderTheMatchingRule) {
  SimMachine m(2, CostModel::ipsc860(), machine::make_hypercube(),
               opts(GetParam()));
  m.run([&](Proc& p) {
    if (p.rank() == 1) {
      p.send_value<int>(0, 1, 10);
      p.send_value<int>(0, 2, 20);
      p.send_value<int>(0, 99, 0);  // sync: arrives last (sender clock)
      return;
    }
    (void)p.recv_value<int>(1, 99);  // both payload messages are now queued
    EXPECT_TRUE(p.probe(1, 1));
    EXPECT_TRUE(p.probe(1, 2));
    EXPECT_TRUE(p.probe(machine::kAnySource, machine::kAnyTag));
    EXPECT_FALSE(p.probe(1, 5));
    // The wildcard receive takes the earliest-arrival match: tag 1 was sent
    // first, so the sender's monotone clock makes it arrive first.
    machine::Message first = p.recv(machine::kAnySource, machine::kAnyTag);
    EXPECT_EQ(first.tag, 1);
    EXPECT_FALSE(p.probe(1, 1));
    EXPECT_TRUE(p.probe(1, 2));
    machine::Message second = p.recv(machine::kAnySource, machine::kAnyTag);
    EXPECT_EQ(second.tag, 2);
    EXPECT_FALSE(p.probe(machine::kAnySource, machine::kAnyTag));
  });
}

INSTANTIATE_TEST_SUITE_P(AllBackends, Backends,
                         ::testing::Values(Backend::kEvent,
                                           Backend::kThreaded),
                         [](const auto& info) {
                           return info.param == Backend::kEvent ? "event"
                                                                : "threaded";
                         });

// --- event-scheduler determinism ---------------------------------------------

TEST(EventSched, AnySourceReceivesInArrivalOrderNotSendOrder) {
  // Three senders charge different amounts of compute before sending, so
  // their messages *arrive* in the reverse of their rank order.  The
  // scheduler wakes the receiver at the earliest matching arrival, so the
  // wildcard receive order is a pure function of virtual time.
  SimMachine m(4, CostModel::ipsc860(), machine::make_hypercube(),
               opts(Backend::kEvent));
  m.run([&](Proc& p) {
    if (p.rank() == 0) {
      std::vector<int> srcs;
      for (int i = 0; i < 3; ++i)
        srcs.push_back(p.recv(machine::kAnySource, 7).src);
      EXPECT_EQ(srcs, (std::vector<int>{3, 2, 1}));
    } else {
      p.charge_time((4 - p.rank()) * 1e-3);  // rank 3 sends at t=1ms, ...
      p.send_value<int>(0, 7, p.rank());
    }
  });
}

TEST(EventSched, RepeatRunsAreBitIdentical) {
  auto once = [] {
    auto r = harness::run_jacobi(32, 3, 2, 2, "BLOCK", {},
                                 opts(Backend::kEvent));
    return std::pair{r.got, r.sim_time};
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// --- threaded watchdog -------------------------------------------------------

TEST(ThreadedWatchdog, FiresWhenAPeerIsStuckOutsideRecv) {
  // Rank 1 is wedged in host-side work (never blocked in recv), so the
  // exact all-blocked detection cannot fire; the wall-clock watchdog must.
  MachineOptions mo = opts(Backend::kThreaded);
  mo.watchdog_seconds = 0.2;
  SimMachine m(2, CostModel::ideal(), machine::make_crossbar(), mo);
  try {
    m.run([&](Proc& p) {
      if (p.rank() == 0) {
        (void)p.recv(1, 5);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(700));
      }
    });
    FAIL() << "expected the watchdog DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("watchdog timeout"),
              std::string::npos)
        << e.what();
  }
}

// --- backend differential: bit-identical results and simulated times ---------

struct SimArray {
  std::vector<double> a;
  double sim_time = 0.0;
  std::uint64_t messages = 0;
};

SimArray jacobi_on(Backend b, int n, int iters, int p, int q) {
  auto compiled = compile::compile_source(
      apps::jacobi_source(n, p, q, iters, "BLOCK"));
  SimMachine m = ipsc_machine(p * q, b);
  interp::Init init;
  init.real["A"] = [](std::span<const interp::Index> g) {
    return harness::jacobi_entry(g[0], g[1]);
  };
  auto r = interp::run_compiled(compiled, m, init, {});
  return {r.real_arrays.at("A"), r.machine.exec_time,
          r.machine.total_messages()};
}

SimArray gauss_on(Backend b, int n, int p) {
  auto compiled = compile::compile_source(apps::gauss_source(n, p, "BLOCK"));
  SimMachine m = ipsc_machine(p, b);
  interp::Init init;
  init.real["A"] = [n](std::span<const interp::Index> g) {
    return apps::gauss_matrix_entry(n, g[0], g[1]);
  };
  auto r = interp::run_compiled(compiled, m, init, {});
  return {r.real_arrays.at("A"), r.machine.exec_time,
          r.machine.total_messages()};
}

TEST(BackendDifferential, JacobiGridSweepBitIdentical) {
  const std::pair<int, int> grids[] = {{1, 1}, {1, 2}, {2, 1}, {2, 2},
                                       {1, 3}, {3, 1}, {2, 3}, {3, 3},
                                       {4, 4}};
  for (auto [p, q] : grids) {
    SCOPED_TRACE(testing::Message() << "grid " << p << "x" << q);
    SimArray ev = jacobi_on(Backend::kEvent, 32, 3, p, q);
    SimArray th = jacobi_on(Backend::kThreaded, 32, 3, p, q);
    EXPECT_EQ(ev.a, th.a);
    EXPECT_EQ(ev.sim_time, th.sim_time);
    EXPECT_EQ(ev.messages, th.messages);
  }
}

TEST(BackendDifferential, GaussProcSweepBitIdentical) {
  for (int p : {1, 2, 3, 4, 8, 16}) {
    SCOPED_TRACE(testing::Message() << "p=" << p);
    SimArray ev = gauss_on(Backend::kEvent, 24, p);
    SimArray th = gauss_on(Backend::kThreaded, 24, p);
    EXPECT_EQ(ev.a, th.a);
    EXPECT_EQ(ev.sim_time, th.sim_time);
    EXPECT_EQ(ev.messages, th.messages);
  }
}

// --- scale: 32x32 and 1024-processor machines --------------------------------

TEST(EventScale, Jacobi256On32x32GridMatchesOracleAndRepeats) {
  const auto t0 = std::chrono::steady_clock::now();
  SimArray r1 = jacobi_on(Backend::kEvent, 256, 1, 32, 32);
  SimArray r2 = jacobi_on(Backend::kEvent, 256, 1, 32, 32);
  const double host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto want = harness::jacobi_oracle(256, 1);
  ASSERT_EQ(r1.a.size(), want.size());
  EXPECT_EQ(r1.a, want);  // element-wise stencil: exactly the oracle
  EXPECT_EQ(r1.a, r2.a);
  EXPECT_EQ(r1.sim_time, r2.sim_time);
  EXPECT_GT(r1.messages, 0u);
  // Two full 1024-processor runs take ~2.5 s in Release; sanitizer builds
  // are an order of magnitude slower, so only guard unsanitized ones.
  if (!kSanitized) {
    EXPECT_LT(host_seconds, 120.0) << "event backend lost its scalability";
  }
}

TEST(EventScale, Gauss1024ProcSkeletonSmoke) {
  auto compiled =
      compile::compile_source(apps::gauss_source(256, 1024, "BLOCK"));
  SimMachine m = ipsc_machine(1024, Backend::kEvent);
  interp::Init init;
  init.real["A"] = [](std::span<const interp::Index> g) {
    return apps::gauss_matrix_entry(256, g[0], g[1]);
  };
  interp::RunOptions ro;
  ro.skeleton = true;
  auto r = interp::run_compiled(compiled, m, init, ro);
  EXPECT_GT(r.machine.exec_time, 0.0);
  EXPECT_GT(r.machine.total_messages(), 0u);
}

// --- machine profiles --------------------------------------------------------

TEST(Profiles, PortabilitySetBuildsMachinesAtScale) {
  const auto& profiles = machine::portability_profiles();
  ASSERT_EQ(profiles.size(), 5u);
  for (const auto& prof : profiles) {
    SCOPED_TRACE(prof.name);
    SimMachine m = machine::make_profile_machine(prof, 1024);
    auto r = m.run([&](Proc& p) {
      const int peer = (p.rank() + 1) % p.nprocs();
      p.send_value<int>(peer, 1, p.rank());
      (void)p.recv_value<int>((p.rank() + p.nprocs() - 1) % p.nprocs(), 1);
    });
    EXPECT_GT(r.exec_time, 0.0);
    EXPECT_EQ(r.total_messages(), 1024u);
  }
  EXPECT_EQ(machine::profile_by_name("cluster/fat-tree").cost->name,
            "modern-cluster");
  EXPECT_THROW(machine::profile_by_name("cray/torus"), Error);
}

}  // namespace
}  // namespace f90d
