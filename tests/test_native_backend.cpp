// Native node-program backend (src/native/): differential sweeps of
// native vs plan-interpreter vs tree-walk over the paper workloads, the
// invalidation contract on the native path, graceful fallback when the
// toolchain is disabled, and NativeCache unit behaviour.
//
// Every differential test tolerates a missing toolchain by construction:
// when kernels cannot be built the native run degrades to the plan
// interpreter (that is the fallback contract), so the bit-identity
// assertions still hold.  Tests that require kernels to actually execute
// GTEST_SKIP on NativeCache::available() instead.
#include <gtest/gtest.h>

#include <cstdlib>

#include "harness.hpp"
#include "native/jit.hpp"
#include "native/lower.hpp"

namespace f90d {
namespace {

using harness::DiffRun;
using interp::Index;

interp::RunOptions backend_native() {
  interp::RunOptions ro;
  ro.native_backend = true;
  return ro;
}

interp::RunOptions backend_plan() { return {}; }

interp::RunOptions backend_tree() {
  interp::RunOptions ro;
  ro.exec_plans = false;
  return ro;
}

bool native_available() {
  return native::NativeCache::instance().available();
}

/// Bit-identical arrays and identical simulated clocks across two
/// backends, plus the reference run against the oracle.
void expect_same_run(const DiffRun& a, const DiffRun& b, double oracle_tol,
                     const std::string& what) {
  ASSERT_EQ(a.got.size(), b.got.size()) << what;
  for (size_t k = 0; k < a.got.size(); ++k)
    ASSERT_EQ(a.got[k], b.got[k]) << what << " element " << k;
  EXPECT_EQ(a.sim_time, b.sim_time) << what << " simulated time";
  EXPECT_LE(harness::max_abs_diff(b), oracle_tol) << what;
}

struct GridShape {
  int p;
  int q;
};

class NativeBackendSweep : public ::testing::TestWithParam<GridShape> {
 protected:
  int p() const { return GetParam().p; }
  int q() const { return GetParam().q; }
  int nprocs() const { return p() * q(); }
};

TEST_P(NativeBackendSweep, Jacobi) {
  for (const char* dist : {"BLOCK", "CYCLIC", "CYCLIC(3)"}) {
    auto nat = harness::run_jacobi(12, 3, p(), q(), dist, backend_native());
    auto plan = harness::run_jacobi(12, 3, p(), q(), dist, backend_plan());
    auto tree = harness::run_jacobi(12, 3, p(), q(), dist, backend_tree());
    expect_same_run(nat, plan, 1e-9, std::string("jacobi ") + dist);
    expect_same_run(nat, tree, 1e-9, std::string("jacobi ") + dist);
  }
}

TEST_P(NativeBackendSweep, Gauss) {
  const int n = 12;
  for (const char* dist : {"BLOCK", "CYCLIC", "CYCLIC(2)"}) {
    auto nat = harness::run_gauss(n, nprocs(), dist, backend_native());
    auto plan = harness::run_gauss(n, nprocs(), dist, backend_plan());
    auto tree = harness::run_gauss(n, nprocs(), dist, backend_tree());
    ASSERT_EQ(nat.got.size(), plan.got.size());
    ASSERT_EQ(nat.got.size(), tree.got.size());
    for (size_t k = 0; k < nat.got.size(); ++k) {
      ASSERT_EQ(nat.got[k], plan.got[k]) << "gauss " << dist << " elem " << k;
      ASSERT_EQ(nat.got[k], tree.got[k]) << "gauss " << dist << " elem " << k;
    }
    EXPECT_EQ(nat.sim_time, plan.sim_time) << "gauss " << dist;
    EXPECT_EQ(nat.sim_time, tree.sim_time) << "gauss " << dist;
    EXPECT_LE(harness::max_abs_diff(tree, harness::gauss_defined_region(n)),
              1e-6);
  }
}

TEST_P(NativeBackendSweep, FftButterfly) {
  auto nat = harness::run_fft(16, 3, nprocs(), backend_native());
  auto plan = harness::run_fft(16, 3, nprocs(), backend_plan());
  auto tree = harness::run_fft(16, 3, nprocs(), backend_tree());
  expect_same_run(nat, plan, 1e-9, "fft");
  expect_same_run(nat, tree, 1e-9, "fft");
}

TEST_P(NativeBackendSweep, IrregularStaysOnParti) {
  // The vector-subscript kernel is structurally outside the planner, so
  // the native backend never even sees a plan for it.
  auto nat = harness::run_irregular(24, 2, nprocs(), backend_native());
  auto tree = harness::run_irregular(24, 2, nprocs(), backend_tree());
  ASSERT_EQ(nat.got.size(), tree.got.size());
  for (size_t k = 0; k < nat.got.size(); ++k)
    ASSERT_EQ(nat.got[k], tree.got[k]) << "irregular element " << k;
  EXPECT_LE(harness::max_abs_diff(tree), 1e-9);
  EXPECT_EQ(nat.native_runs, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NativeBackendSweep,
    ::testing::Values(GridShape{1, 1}, GridShape{1, 2}, GridShape{2, 1},
                      GridShape{2, 2}, GridShape{1, 4}, GridShape{4, 1},
                      GridShape{4, 2}, GridShape{2, 4}, GridShape{4, 4}),
    [](const ::testing::TestParamInfo<GridShape>& info) {
      return std::to_string(info.param.p) + "x" + std::to_string(info.param.q);
    });

// --- kernels really run ------------------------------------------------------

TEST(NativeBackend, KernelsActuallyExecute) {
  if (!native_available())
    GTEST_SKIP() << "no native toolchain in this environment";
  auto r = harness::run_jacobi(16, 4, 2, 2, "BLOCK", backend_native());
  EXPECT_LE(harness::max_abs_diff(r), 1e-9);
  // Jacobi's two FORALLs are fully lowerable: every planned trip runs a
  // compiled kernel on rank 0, none fall back.
  EXPECT_GT(r.native_runs, 0);
  EXPECT_EQ(r.native_fallbacks, 0);
  EXPECT_EQ(r.native_runs, r.plan_hits + r.plan_misses);
}

TEST(NativeBackend, PlanBackendCollectsNoNativeStats) {
  auto r = harness::run_jacobi(12, 2, 2, 2, "BLOCK", backend_plan());
  EXPECT_EQ(r.native_runs, 0);
  EXPECT_EQ(r.native_attaches, 0);
  EXPECT_EQ(r.native_fallbacks, 0);
}

// --- invalidation contract on the native path --------------------------------

TEST(NativeBackend, ArrayIntrinsicInvalidatesNativeAttachments) {
  // Mirror of ExecPlanCache.ArrayIntrinsicInvalidatesEndToEnd: the CSHIFT
  // between trips rewrites A wholesale, which must drop the native
  // function attachments along with the plans — a stale kernel would keep
  // writing through a dangling base pointer.
  const char* src = R"(PROGRAM SHIFTY
      INTEGER N
      PARAMETER (N = 16)
      REAL A(N)
      REAL B(N)
      INTEGER IT
C$ PROCESSORS P(4)
C$ TEMPLATE T(N)
C$ DISTRIBUTE T(BLOCK)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
      DO IT = 1, 3
        FORALL (I = 1:N) B(I) = A(I) + 1.0
        A = CSHIFT(B, 1)
      END DO
      END PROGRAM SHIFTY
)";
  auto compiled = compile::compile_source(src);
  machine::SimMachine m = harness::make_machine(4);
  interp::Init init;
  init.real["A"] = [](std::span<const Index> g) {
    return static_cast<double>(g[0]);
  };
  interp::RunOptions ro = backend_native();
  auto r = interp::run_compiled(compiled, m, init, ro);
  EXPECT_GT(r.plan_invalidations, 0);
  if (native_available()) {
    EXPECT_GT(r.native_runs, 0);
    EXPECT_GT(r.native_invalidations, 0);
  }

  std::vector<double> a(16), b(16);
  for (int i = 0; i < 16; ++i) a[static_cast<size_t>(i)] = i;
  for (int it = 0; it < 3; ++it) {
    for (int i = 0; i < 16; ++i)
      b[static_cast<size_t>(i)] = a[static_cast<size_t>(i)] + 1.0;
    for (int i = 0; i < 16; ++i)
      a[static_cast<size_t>(i)] = b[static_cast<size_t>((i + 1) % 16)];
  }
  const auto& got = r.real_arrays.at("A");
  ASSERT_EQ(got.size(), a.size());
  for (size_t k = 0; k < a.size(); ++k) EXPECT_DOUBLE_EQ(got[k], a[k]);
}

// --- graceful fallback -------------------------------------------------------

TEST(NativeBackend, EnvKillSwitchFallsBackCleanly) {
  // F90D_NATIVE=0 is the run-time off switch (the sanitizer escape hatch):
  // a native-backend run must degrade to the plan interpreter without
  // running a single kernel — and without erroring.
  ::setenv("F90D_NATIVE", "0", 1);
  auto nat = harness::run_jacobi(12, 3, 2, 2, "BLOCK", backend_native());
  ::unsetenv("F90D_NATIVE");
  auto plan = harness::run_jacobi(12, 3, 2, 2, "BLOCK", backend_plan());
  expect_same_run(nat, plan, 1e-9, "jacobi kill-switch");
  EXPECT_EQ(nat.native_runs, 0);
}

// --- NativeCache unit behaviour ----------------------------------------------

TEST(NativeJit, CompilesCachesAndRunsAKernel) {
  if (!native_available())
    GTEST_SKIP() << "no native toolchain in this environment";
  // A hand-written ABI-conforming kernel: out[i] = 2*in[i] + ds[0] over
  // lp[0] elements.  Exercises the whole compile + dlopen + call path
  // without the lowering layer.
  const std::string src = std::string("extern \"C\" void ") +
                          native::kKernelSymbol +
                          "(const long long* lp, const long long* const* lv,"
                          " void* const* base, const long long* rb,"
                          " const long long* st, const long long* const* tb,"
                          " const double* ds, const long long* is,"
                          " const unsigned char* ls) {\n"
                          "  (void)lv; (void)rb; (void)st; (void)tb;"
                          " (void)is; (void)ls;\n"
                          "  const double* in = (const double*)base[0];\n"
                          "  double* out = (double*)base[1];\n"
                          "  for (long long i = 0; i < lp[0]; ++i)"
                          " out[i] = 2.0 * in[i] + ds[0];\n"
                          "}\n";
  native::NativeCache& cache = native::NativeCache::instance();
  const native::JitStats before = cache.stats();
  native::KernelFn fn = cache.get_or_compile(src);
  ASSERT_NE(fn, nullptr);

  double in[4] = {1.0, 2.0, 3.0, 4.0};
  double out[4] = {0, 0, 0, 0};
  long long lp[3] = {4, 0, 1};
  void* base[2] = {in, out};
  double ds[1] = {0.5};
  fn(lp, nullptr, base, nullptr, nullptr, nullptr, ds, nullptr, nullptr);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], 2.0 * in[i] + 0.5);

  // Second request with the same source is a pure cache hit.
  EXPECT_EQ(cache.get_or_compile(src), fn);
  const native::JitStats after = cache.stats();
  EXPECT_EQ(after.compiles, before.compiles + 1);
  EXPECT_GE(after.cache_hits, before.cache_hits + 1);
  EXPECT_GT(after.compile_ms, before.compile_ms);
}

TEST(NativeJit, LowerDeclinesGracefully) {
  // A plan with a non-direct lhs must decline with a reason rather than
  // emit broken source.
  exec::ExecPlan p;
  p.loops.push_back(exec::PlanLoop{"I", 4, 0, 1, {}});
  p.lhs.kind = exec::RefPlan::Kind::kRealSlab;
  std::string why;
  EXPECT_FALSE(native::lower_plan(p, &why).has_value());
  EXPECT_FALSE(why.empty());
}

}  // namespace
}  // namespace f90d
