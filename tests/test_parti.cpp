// PARTI-style inspector/executor runtime (paper §5.1, §5.3.2): the three
// schedule builders, both executors, replica handling, and schedule reuse.
#include <gtest/gtest.h>

#include "comm/grid_comm.hpp"
#include "machine/topology.hpp"
#include "parti/schedule.hpp"
#include "parti/schedule_cache.hpp"
#include "rts/dist_array.hpp"

namespace f90d {
namespace {

using machine::CostModel;
using machine::SimMachine;
using parti::Schedule;
using rts::Dad;
using rts::DimMap;
using rts::DistArray;
using rts::DistKind;
using rts::Index;

Dad block1d(Index n, const comm::ProcGrid& g, DistKind k = DistKind::kBlock) {
  DimMap m;
  m.kind = k;
  m.grid_dim = 0;
  m.template_extent = n;
  return Dad({n}, {m}, g);
}

template <typename F>
void on_machine(int p, F&& body) {
  SimMachine m(p, CostModel::ipsc860(), machine::make_hypercube());
  m.run([&](machine::Proc& proc) {
    comm::GridComm gc(proc, comm::ProcGrid({p}));
    body(gc);
  });
}

class PartiProcs : public ::testing::TestWithParam<int> {};

/// schedule1 (precomp_read): f(i) = 2*i+1 over the lower half.
TEST_P(PartiProcs, Schedule1ReadInvertibleAffine) {
  const int p = GetParam();
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 64;
    Dad dad = block1d(n, gc.grid());
    DistArray<double> b(dad, gc);
    b.fill_global([](std::span<const Index> g) { return g[0] * 1.0; });

    // Iterations i = 0..n/2-1, block partitioned like the array itself;
    // iteration i needs element 2*i+1.
    auto needs_for = [&](int coord, std::vector<Index>& out) {
      const Index cnt = dad.local_extent(0, coord);
      for (Index l = 0; l < cnt; ++l) {
        const Index i = dad.global_of_local(0, l, coord);
        if (i < n / 2) out.push_back(2 * i + 1);
      }
    };
    std::vector<Index> my_needs;
    needs_for(gc.coord(0), my_needs);
    auto sched = parti::schedule1_read(
        gc, dad, my_needs, [&](int q, std::vector<Index>& out) {
          needs_for(gc.grid().coords_of(q)[0], out);
        });
    EXPECT_EQ(sched->inspector_messages, 0);  // local-only preprocessing
    auto tmp = parti::precomp_read(gc, *sched, b);
    ASSERT_EQ(tmp.size(), my_needs.size());
    for (size_t k = 0; k < my_needs.size(); ++k)
      EXPECT_DOUBLE_EQ(tmp[k], static_cast<double>(my_needs[k]));
  });
}

/// schedule2 (gather): vector-valued subscript known only at run time.
TEST_P(PartiProcs, Schedule2GatherVectorValued) {
  const int p = GetParam();
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 48;
    Dad dad = block1d(n, gc.grid());
    DistArray<double> b(dad, gc);
    b.fill_global([](std::span<const Index> g) { return 1000.0 + g[0]; });
    std::vector<Index> my_needs;
    const Index cnt = dad.local_extent(0, gc.coord(0));
    for (Index l = 0; l < cnt; ++l) {
      const Index i = dad.global_of_local(0, l, gc.coord(0));
      my_needs.push_back((i * 13 + 7) % n);  // "V(i)"
    }
    auto sched = parti::schedule2(gc, dad, my_needs);
    if (p > 1) {
      EXPECT_GT(sched->inspector_messages, 0);  // fan-in happened
    }
    auto tmp = parti::gather(gc, *sched, b);
    ASSERT_EQ(tmp.size(), my_needs.size());
    for (size_t k = 0; k < my_needs.size(); ++k)
      EXPECT_DOUBLE_EQ(tmp[k], 1000.0 + my_needs[k]);
  });
}

/// schedule3 (scatter): A(U(i)) = value, U a permutation.
TEST_P(PartiProcs, Schedule3ScatterPermutation) {
  const int p = GetParam();
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 40;
    Dad dad = block1d(n, gc.grid());
    DistArray<double> a(dad, gc);
    std::vector<Index> my_dests;
    std::vector<double> my_vals;
    const Index cnt = dad.local_extent(0, gc.coord(0));
    for (Index l = 0; l < cnt; ++l) {
      const Index i = dad.global_of_local(0, l, gc.coord(0));
      my_dests.push_back((i * 7 + 3) % n);  // gcd(7,40)=1: a permutation
      my_vals.push_back(i * 10.0);
    }
    auto sched = parti::schedule3(gc, dad, my_dests);
    parti::scatter(gc, *sched, a, std::span<const double>(my_vals));
    auto full = a.gather_global(gc);
    for (Index i = 0; i < n; ++i)
      EXPECT_DOUBLE_EQ(full[static_cast<size_t>((i * 7 + 3) % n)], i * 10.0);
  });
}

/// schedule1 write flavour (postcomp_write): invertible affine destination.
TEST_P(PartiProcs, Schedule1WritePostcomp) {
  const int p = GetParam();
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 32;
    Dad dad = block1d(n, gc.grid());
    DistArray<double> a(dad, gc);
    // Iterations i over the lower half write element 2*i (strided write).
    auto dests_for = [&](int coord, std::vector<Index>& out) {
      const Index cnt = dad.local_extent(0, coord);
      for (Index l = 0; l < cnt; ++l) {
        const Index i = dad.global_of_local(0, l, coord);
        if (i < n / 2) out.push_back(2 * i);
      }
    };
    std::vector<Index> my_dests;
    dests_for(gc.coord(0), my_dests);
    std::vector<double> vals;
    for (Index d : my_dests) vals.push_back(d + 0.25);
    auto sched = parti::schedule1_write(
        gc, dad, my_dests, [&](int q, std::vector<Index>& out) {
          dests_for(gc.grid().coords_of(q)[0], out);
        });
    EXPECT_EQ(sched->inspector_messages, 0);
    parti::postcomp_write(gc, *sched, a, std::span<const double>(vals));
    auto full = a.gather_global(gc);
    for (Index i = 0; i < n; ++i) {
      const double expect = i % 2 == 0 ? i + 0.25 : 0.0;
      EXPECT_DOUBLE_EQ(full[static_cast<size_t>(i)], expect);
    }
  });
}

/// Writes to a replicated destination reach every copy.
TEST_P(PartiProcs, ScatterToReplicatedReachesAllCopies) {
  const int p = GetParam();
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 16;
    Dad rep = Dad::replicated({n}, gc.grid());
    DistArray<double> a(rep, gc);
    // Only logical 0 contributes values (like a guard line would).
    std::vector<Index> dests;
    std::vector<double> vals;
    if (gc.my_logical() == 0) {
      for (Index i = 0; i < n; ++i) {
        dests.push_back(i);
        vals.push_back(i * 2.0 + 1);
      }
    }
    auto sched = parti::schedule3(gc, rep, dests);
    parti::scatter(gc, *sched, a, std::span<const double>(vals));
    // Every processor's local copy holds the data.
    for (Index i = 0; i < n; ++i) {
      std::vector<Index> gi{i};
      EXPECT_DOUBLE_EQ(a.at_global(gi), i * 2.0 + 1);
    }
  });
}

/// The same schedule re-executes on different (identically mapped) data —
/// the reuse the paper amortizes.
TEST_P(PartiProcs, ScheduleReusedAcrossArrays) {
  const int p = GetParam();
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 24;
    Dad dad = block1d(n, gc.grid());
    DistArray<double> b1(dad, gc), b2(dad, gc);
    b1.fill_global([](std::span<const Index> g) { return g[0] * 1.0; });
    b2.fill_global([](std::span<const Index> g) { return g[0] * -2.0; });
    std::vector<Index> needs;
    const Index cnt = dad.local_extent(0, gc.coord(0));
    for (Index l = 0; l < cnt; ++l)
      needs.push_back((dad.global_of_local(0, l, gc.coord(0)) + 5) % n);
    auto sched = parti::schedule2(gc, dad, needs);
    auto t1 = parti::gather(gc, *sched, b1);
    auto t2 = parti::gather(gc, *sched, b2);  // reuse, no new inspector
    for (size_t k = 0; k < needs.size(); ++k) {
      EXPECT_DOUBLE_EQ(t1[k], needs[k] * 1.0);
      EXPECT_DOUBLE_EQ(t2[k], needs[k] * -2.0);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, PartiProcs, ::testing::Values(1, 2, 4, 8, 16));

TEST(ScheduleCache, HitsMissesAndDisable) {
  parti::ScheduleCache cache;
  int builds = 0;
  auto build = [&]() {
    ++builds;
    return std::make_shared<const Schedule>();
  };
  auto a = cache.get_or_build("k1", build);
  auto b = cache.get_or_build("k1", build);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  cache.get_or_build("k2", build);
  EXPECT_EQ(builds, 2);
  cache.set_enabled(false);
  cache.get_or_build("k1", build);  // bypassed
  EXPECT_EQ(builds, 3);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace f90d
