// Dimensional reductions (SUM(A, DIM=)) and the allreduce_dim collective,
// plus portability across the third cost model (workstation-net, the
// Express networks-of-workstations target of §8.1).
#include <gtest/gtest.h>

#include "comm/grid_comm.hpp"
#include "machine/topology.hpp"
#include "rts/dist_array.hpp"
#include "rts/reductions.hpp"

namespace f90d {
namespace {

using machine::CostModel;
using machine::SimMachine;
using rts::Dad;
using rts::DimMap;
using rts::DistArray;
using rts::DistKind;
using rts::Index;

Dad block2d(Index r, Index c, const comm::ProcGrid& g) {
  DimMap m0;
  m0.kind = DistKind::kBlock;
  m0.grid_dim = 0;
  m0.template_extent = r;
  DimMap m1 = m0;
  m1.grid_dim = 1;
  m1.template_extent = c;
  return Dad({r, c}, {m0, m1}, g);
}

class ReduceDimGrid
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ReduceDimGrid, SumAlongEitherDimensionMatchesOracle) {
  const auto [p, q, dim] = GetParam();
  SimMachine m(p * q, CostModel::ideal(), machine::make_hypercube());
  const Index rows = 12, cols = 10;
  m.run([&, p2 = p, q2 = q, d = dim](machine::Proc& proc) {
    comm::GridComm gc(proc, comm::ProcGrid({p2, q2}));
    DistArray<double> a(block2d(rows, cols, gc.grid()), gc);
    a.fill_global([&](std::span<const Index> g) {
      return static_cast<double>(g[0] * 100 + g[1]);
    });
    DistArray<double> r = rts::reduce_dim(
        gc, a, d, 0.0, [](double x, double y) { return x + y; });
    auto full = r.gather_global(gc);
    const Index out_n = d == 0 ? cols : rows;
    ASSERT_EQ(full.size(), static_cast<size_t>(out_n));
    for (Index k = 0; k < out_n; ++k) {
      double expect = 0;
      if (d == 0) {
        for (Index i = 0; i < rows; ++i) expect += i * 100 + k;
      } else {
        for (Index j = 0; j < cols; ++j) expect += k * 100 + j;
      }
      EXPECT_DOUBLE_EQ(full[static_cast<size_t>(k)], expect)
          << "dim=" << d << " k=" << k;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grids, ReduceDimGrid,
    ::testing::Values(std::make_tuple(1, 1, 0), std::make_tuple(2, 2, 0),
                      std::make_tuple(2, 2, 1), std::make_tuple(4, 2, 0),
                      std::make_tuple(4, 2, 1), std::make_tuple(2, 4, 1)));

TEST(AllreduceDim, CombinesWithinGridLinesOnly) {
  SimMachine m(8, CostModel::ideal(), machine::make_hypercube());
  m.run([&](machine::Proc& proc) {
    comm::GridComm gc(proc, comm::ProcGrid({2, 4}));
    // Sum along dim 1: each row line combines its 4 values.
    std::vector<long long> v{gc.coord(0) * 1000LL + gc.coord(1)};
    gc.allreduce_dim(1, v, [](long long a, long long b) { return a + b; });
    EXPECT_EQ(v[0], gc.coord(0) * 4000LL + 0 + 1 + 2 + 3);
  });
}

TEST(CostModels, WorkstationNetHasHighLatencyLowHopCost) {
  const CostModel& ws = CostModel::workstation_net();
  const CostModel& cube = CostModel::ipsc860();
  EXPECT_GT(ws.msg_latency, cube.msg_latency * 5);
  EXPECT_EQ(ws.time_per_hop, 0.0);  // crossbar-style LAN
  // A latency-bound collective is slower on the LAN than on the cube.
  auto bcast_time = [](const CostModel& cm, std::unique_ptr<machine::Topology> t) {
    SimMachine m(8, cm, std::move(t));
    auto r = m.run([&](machine::Proc& proc) {
      comm::GridComm gc(proc, comm::ProcGrid({8}));
      std::vector<double> data;
      if (gc.my_logical() == 0) data.assign(16, 1.0);
      gc.bcast_all(0, data);
    });
    return r.exec_time;
  };
  EXPECT_GT(bcast_time(ws, machine::make_crossbar()),
            bcast_time(cube, machine::make_hypercube()));
}

TEST(Reductions, ReplicatedArrayContributesOnce) {
  // A fully replicated array must not be over-counted by the tree.
  SimMachine m(4, CostModel::ideal(), machine::make_hypercube());
  m.run([&](machine::Proc& proc) {
    comm::GridComm gc(proc, comm::ProcGrid({4}));
    DistArray<double> a(Dad::replicated({10}, gc.grid()), gc);
    a.fill_global([](std::span<const Index> g) { return g[0] * 1.0; });
    EXPECT_DOUBLE_EQ(rts::global_sum(gc, a), 45.0);
  });
}

}  // namespace
}  // namespace f90d
