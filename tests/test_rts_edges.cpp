// Run-time library edge cases at grid boundaries: overlap/temporary shifts
// that wrap (or must not wrap) at the ends of the processor grid, shifts
// that spill across multiple processors, empty local blocks when P > N, and
// remap-based redistribution round trips.
#include <gtest/gtest.h>

#include "comm/grid_comm.hpp"
#include "harness.hpp"
#include "machine/topology.hpp"
#include "parti/schedule.hpp"
#include "rts/dist_array.hpp"
#include "rts/remap.hpp"
#include "rts/shift_ops.hpp"
#include "support/diag.hpp"

namespace f90d {
namespace {

using harness::on_machine;
using machine::CostModel;
using machine::SimMachine;
using rts::Dad;
using rts::DimMap;
using rts::DistArray;
using rts::DistKind;
using rts::Index;

Dad block1d(Index n, const comm::ProcGrid& g, int overlap_lo, int overlap_hi) {
  return harness::dist1d(n, g, DistKind::kBlock, overlap_lo, overlap_hi);
}

constexpr double kSentinel = -999.0;

/// Non-circular overlap shift: interior boundaries are exchanged, but the
/// grid-edge processor's ghost cells must be left untouched (EOSHIFT /
/// interior-only FORALL bounds semantics).
TEST(OverlapShift, EdgeProcessorGhostUntouchedWithoutWrap) {
  for (int p : {2, 4}) {
    on_machine(p, [&](comm::GridComm& gc) {
      const Index n = 16;
      DistArray<double> a(block1d(n, gc.grid(), 0, 1), gc);
      a.fill_global([](std::span<const Index> g) { return g[0] * 1.0; });
      const Index lext = a.local_extent(0);
      const std::vector<Index> ghost{lext};
      a.at_local(ghost) = kSentinel;

      rts::overlap_shift(gc, a, 0, +1, /*circular=*/false);

      if (gc.coord(0) < p - 1) {
        // My high ghost holds my successor's first element.
        const Index next_first = a.dad().global_of_local(0, 0, gc.coord(0) + 1);
        EXPECT_DOUBLE_EQ(a.at_local(ghost), static_cast<double>(next_first));
      } else {
        EXPECT_DOUBLE_EQ(a.at_local(ghost), kSentinel)
            << "edge processor ghost must stay untouched";
      }
    });
  }
}

/// Circular overlap shift: the last processor wraps around to the first
/// (CSHIFT), in both directions.
TEST(OverlapShift, CircularWrapsAtBothGridEdges) {
  const int p = 4;
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 16;
    DistArray<double> a(block1d(n, gc.grid(), 1, 1), gc);
    a.fill_global([](std::span<const Index> g) { return 10.0 + g[0]; });

    rts::overlap_shift(gc, a, 0, +1, /*circular=*/true);
    rts::overlap_shift(gc, a, 0, -1, /*circular=*/true);

    const Index lext = a.local_extent(0);
    const Index my_first = a.dad().global_of_local(0, 0, gc.coord(0));
    const Index my_last = my_first + lext - 1;
    const std::vector<Index> hi{lext};
    const std::vector<Index> lo{-1};
    EXPECT_DOUBLE_EQ(a.at_local(hi), 10.0 + (my_last + 1) % n);
    EXPECT_DOUBLE_EQ(a.at_local(lo), 10.0 + (my_first - 1 + n) % n);
  });
}

/// Shift amount equal to the full declared overlap width moves a multi-plane
/// slab in one exchange.
TEST(OverlapShift, FullWidthSlabExchange) {
  const int p = 4;
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 16;
    const int width = 2;
    DistArray<double> a(block1d(n, gc.grid(), 0, width), gc);
    a.fill_global([](std::span<const Index> g) { return g[0] * 1.0; });

    rts::overlap_shift(gc, a, 0, width, /*circular=*/true);

    const Index lext = a.local_extent(0);
    const Index my_first = a.dad().global_of_local(0, 0, gc.coord(0));
    for (int k = 0; k < width; ++k) {
      const std::vector<Index> ghost{lext + k};
      EXPECT_DOUBLE_EQ(a.at_local(ghost),
                       static_cast<double>((my_first + lext + k) % n));
    }
  });
}

/// P > N: trailing processors own zero elements; the collective shift must
/// still terminate and fill the ghosts that exist.
TEST(OverlapShift, EmptyLocalBlocksWhenMoreProcsThanElements) {
  const int p = 4;
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 3;  // block(1,1,1,0): last processor is empty
    DistArray<double> a(block1d(n, gc.grid(), 0, 1), gc);
    a.fill_global([](std::span<const Index> g) { return 5.0 + g[0]; });

    rts::overlap_shift(gc, a, 0, +1, /*circular=*/false);

    const Index lext = a.local_extent(0);
    if (lext > 0 && gc.coord(0) + 1 < p &&
        a.dad().local_extent(0, gc.coord(0) + 1) > 0) {
      const std::vector<Index> ghost{lext};
      const Index next_first = a.dad().global_of_local(0, 0, gc.coord(0) + 1);
      EXPECT_DOUBLE_EQ(a.at_local(ghost), 5.0 + next_first);
    }
  });
}

/// 2-D (BLOCK, BLOCK): shifting along the second dimension exchanges a
/// non-contiguous column slab; row boundaries must be preserved exactly.
TEST(OverlapShift, TwoDimensionalColumnSlab) {
  const int p = 2, q = 2;
  SimMachine m(p * q, CostModel::ipsc860(), machine::make_hypercube());
  m.run([&](machine::Proc& proc) {
    comm::GridComm gc(proc, comm::ProcGrid({p, q}));
    const Index n = 8;
    DimMap mr, mc;
    mr.kind = DistKind::kBlock;
    mr.grid_dim = 0;
    mr.template_extent = n;
    mc.kind = DistKind::kBlock;
    mc.grid_dim = 1;
    mc.template_extent = n;
    mc.overlap_hi = 1;
    DistArray<double> a(Dad({n, n}, {mr, mc}, gc.grid()), gc);
    a.fill_global(
        [](std::span<const Index> g) { return g[0] * 100.0 + g[1]; });

    rts::overlap_shift(gc, a, 1, +1, /*circular=*/false);

    if (gc.coord(1) + 1 < q) {
      const Index rows = a.local_extent(0);
      const Index cols = a.local_extent(1);
      const Index next_col = a.dad().global_of_local(1, 0, gc.coord(1) + 1);
      for (Index r = 0; r < rows; ++r) {
        const std::vector<Index> ghost{r, cols};
        const Index gr = a.dad().global_of_local(0, r, gc.coord(0));
        EXPECT_DOUBLE_EQ(a.at_local(ghost), gr * 100.0 + next_col);
      }
    }
  });
}

/// temporary_shift with an amount larger than the local block spills across
/// multiple processors; out-of-range elements stay at the zero fill.
TEST(TemporaryShift, MultiProcessorSpillNonCircular) {
  const int p = 4;
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 16, amount = 6;  // block size 4: spills two procs over
    DistArray<double> a(block1d(n, gc.grid(), 0, 0), gc);
    a.fill_global([](std::span<const Index> g) { return 1.0 + g[0]; });

    DistArray<double> tmp =
        rts::temporary_shift(gc, a, 0, amount, /*circular=*/false);

    tmp.for_each_owned([&](const std::vector<Index>& g, double& v) {
      const Index src = g[0] + amount;
      if (src < n)
        EXPECT_DOUBLE_EQ(v, 1.0 + src) << "tmp(" << g[0] << ")";
      else
        EXPECT_DOUBLE_EQ(v, 0.0) << "out-of-range tmp(" << g[0] << ")";
    });
  });
}

/// Circular temporary shift wraps through the grid edge in both directions,
/// including |amount| > N (reduces mod N).
TEST(TemporaryShift, CircularWrapAndNegativeAmounts) {
  const int p = 4;
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 12;
    DistArray<double> a(block1d(n, gc.grid(), 0, 0), gc);
    a.fill_global([](std::span<const Index> g) { return 2.0 * g[0]; });

    for (Index amount : {Index{5}, Index{-5}, Index{n + 2}}) {
      DistArray<double> tmp =
          rts::temporary_shift(gc, a, 0, amount, /*circular=*/true);
      tmp.for_each_owned([&](const std::vector<Index>& g, double& v) {
        const Index src = ((g[0] + amount) % n + n) % n;
        EXPECT_DOUBLE_EQ(v, 2.0 * src)
            << "tmp(" << g[0] << ") amount " << amount;
      });
    }
  });
}

/// redistribute (remap with the identity map) preserves every element across
/// a BLOCK -> CYCLIC -> BLOCK round trip — the paper's automatic
/// redistribution at subroutine boundaries.
TEST(Remap, BlockCyclicRoundTripPreservesValues) {
  for (int p : {2, 4}) {
    on_machine(p, [&](comm::GridComm& gc) {
      const Index n = 19;  // deliberately not divisible by p
      DistArray<double> a(block1d(n, gc.grid(), 0, 0), gc);
      a.fill_global([](std::span<const Index> g) { return 7.0 + 3.0 * g[0]; });

      DimMap mc;
      mc.kind = DistKind::kCyclic;
      mc.grid_dim = 0;
      mc.template_extent = n;
      Dad cyclic({n}, {mc}, gc.grid());

      DistArray<double> c = rts::redistribute(gc, a, cyclic);
      c.for_each_owned([&](const std::vector<Index>& g, double& v) {
        EXPECT_DOUBLE_EQ(v, 7.0 + 3.0 * g[0]);
      });

      DistArray<double> back = rts::redistribute(gc, c, a.dad());
      back.for_each_owned([&](const std::vector<Index>& g, double& v) {
        EXPECT_DOUBLE_EQ(v, 7.0 + 3.0 * g[0]);
      });
    });
  }
}

/// BLOCK -> CYCLIC(k) -> BLOCK for k in {2, 3}: the block-cyclic descriptor
/// must route every element to its new owner and back without loss, on a
/// size that leaves ragged trailing blocks.
TEST(Remap, BlockCyclicKRoundTripPreservesValues) {
  for (int p : {2, 4}) {
    for (Index k : {Index{2}, Index{3}}) {
      on_machine(p, [&](comm::GridComm& gc) {
        const Index n = 23;  // not divisible by k*p: ragged last course
        DistArray<double> a(block1d(n, gc.grid(), 0, 0), gc);
        a.fill_global([](std::span<const Index> g) { return 1.5 + 2.0 * g[0]; });

        DistArray<double> c = rts::redistribute(
            gc, a,
            harness::dist1d(n, gc.grid(), DistKind::kCyclic, 0, 0, k));
        c.for_each_owned([&](const std::vector<Index>& g, double& v) {
          EXPECT_DOUBLE_EQ(v, 1.5 + 2.0 * g[0]) << "k=" << k;
        });

        DistArray<double> back = rts::redistribute(gc, c, a.dad());
        back.for_each_owned([&](const std::vector<Index>& g, double& v) {
          EXPECT_DOUBLE_EQ(v, 1.5 + 2.0 * g[0]) << "k=" << k;
        });
      });
    }
  }
}

/// CYCLIC(2) -> CYCLIC(3): redistribution between two block-cyclic layouts
/// with different block sizes (the mappings interleave differently, so
/// almost every element moves).
TEST(Remap, CyclicTwoToCyclicThreePreservesValues) {
  const int p = 4;
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 26;
    DistArray<double> a(
        harness::dist1d(n, gc.grid(), DistKind::kCyclic, 0, 0, 2), gc);
    a.fill_global([](std::span<const Index> g) { return 4.0 - 0.5 * g[0]; });

    DistArray<double> c = rts::redistribute(
        gc, a, harness::dist1d(n, gc.grid(), DistKind::kCyclic, 0, 0, 3));
    c.for_each_owned([&](const std::vector<Index>& g, double& v) {
      EXPECT_DOUBLE_EQ(v, 4.0 - 0.5 * g[0]);
    });
  });
}

/// temporary_shift on a CYCLIC(k) array: the shifted temporary is exact for
/// amounts that cross block and course boundaries, both directions.
TEST(TemporaryShift, BlockCyclicShiftsAcrossBlockBoundaries) {
  const int p = 4;
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 21;
    DistArray<double> a(
        harness::dist1d(n, gc.grid(), DistKind::kCyclic, 0, 0, 2), gc);
    a.fill_global([](std::span<const Index> g) { return 3.0 * g[0] + 1.0; });

    for (Index amount : {Index{1}, Index{-1}, Index{3}, Index{10}}) {
      DistArray<double> tmp =
          rts::temporary_shift(gc, a, 0, amount, /*circular=*/true);
      tmp.for_each_owned([&](const std::vector<Index>& g, double& v) {
        const Index src = ((g[0] + amount) % n + n) % n;
        EXPECT_DOUBLE_EQ(v, 3.0 * src + 1.0)
            << "tmp(" << g[0] << ") amount " << amount;
      });
    }
  });
}

// --- irregular computation edges ---------------------------------------------

std::string pgtn_source(int n, int p) {
  return strformat(R"(PROGRAM PGTN
      INTEGER N
      PARAMETER (N = %d)
      REAL A(N)
      REAL B(N)
      REAL C(N)
      INTEGER U(N)
      INTEGER V(N)
      INTEGER MAP(N)
      INTEGER IT
C$ PROCESSORS P(%d)
C$ TEMPLATE T(N)
C$ DISTRIBUTE T(INDIRECT(MAP))
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ ALIGN C(I) WITH T(I)
      DO IT = 1, 3
        FORALL (I = 1:N) A(U(I)) = B(V(I)) + C(I)
      END DO
      END PROGRAM PGTN
)",
                   n, p);
}

/// A(U(I)) = B(V(I)) + C(I) on an INDIRECT(MAP) template with more
/// processors than template cells: some processors own nothing, yet they
/// must still join every collective schedule build.
TEST(IrregularEdges, IndirectWithMoreProcsThanElements) {
  const int n = 3;
  for (int p : {4, 6}) {
    auto compiled = compile::compile_source(pgtn_source(n, p));
    machine::SimMachine m = harness::make_machine(p);
    interp::Init init;
    init.ints["U"] = [n](std::span<const Index> g) {
      return harness::irregular_u(n, g[0]) + 1;
    };
    init.ints["V"] = [n](std::span<const Index> g) {
      return harness::irregular_v(n, g[0]) + 1;
    };
    init.ints["MAP"] = [p](std::span<const Index> g) {
      return harness::map_owner(g[0], p) + 1;
    };
    init.real["B"] = [](std::span<const Index> g) { return g[0] * 2.0; };
    init.real["C"] = [](std::span<const Index> g) { return g[0] * 100.0; };
    auto result = interp::run_compiled(compiled, m, init);
    const auto want = harness::irregular_oracle(n);
    const auto& got = result.real_arrays.at("A");
    ASSERT_EQ(got.size(), want.size()) << "p=" << p;
    for (size_t k = 0; k < want.size(); ++k)
      EXPECT_EQ(got[k], want[k]) << "p=" << p << " k=" << k;
  }
}

std::string oob_source(int n, int p) {
  return strformat(R"(PROGRAM OOB
      INTEGER N
      PARAMETER (N = %d)
      REAL A(N)
      REAL B(N)
      INTEGER V(N)
      INTEGER IT
C$ PROCESSORS P(%d)
C$ TEMPLATE T(N)
C$ DISTRIBUTE T(BLOCK)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
      DO IT = 1, 2
        FORALL (I = 1:N) A(I) = B(V(I))
      END DO
      END PROGRAM OOB
)",
                   n, p);
}

/// An out-of-range gather subscript surfaces as a runtime diagnostic naming
/// the subscripted array, from the tree walk and the planned inspector
/// alike.
TEST(IrregularEdges, OutOfRangeGatherIndexDiagnosed) {
  const int n = 8, p = 2;
  for (bool plans : {false, true}) {
    auto compiled = compile::compile_source(oob_source(n, p));
    machine::SimMachine m = harness::make_machine(p);
    interp::Init init;
    init.ints["V"] = [n](std::span<const Index> g) {
      return g[0] == 3 ? n + 5 : 1;  // one rogue subscript
    };
    init.real["B"] = [](std::span<const Index>) { return 0.0; };
    interp::RunOptions ro;
    ro.exec_plans = plans;
    try {
      (void)interp::run_compiled(compiled, m, init, ro);
      FAIL() << "expected an out-of-range diagnostic (plans=" << plans << ")";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("B"), std::string::npos)
          << e.what();
    }
  }
}

/// Same for an out-of-range scatter destination (lhs indirection value).
TEST(IrregularEdges, OutOfRangeScatterDestinationDiagnosed) {
  const int n = 8, p = 2;
  for (bool plans : {false, true}) {
    auto compiled =
        compile::compile_source(apps::irregular_source(n, p, /*steps=*/2));
    machine::SimMachine m = harness::make_machine(p);
    interp::Init init;
    init.ints["U"] = [](std::span<const Index> g) {
      return g[0] == 2 ? 0 : static_cast<Index>(g[0]) + 1;  // 0 < lower bound
    };
    init.ints["V"] = [](std::span<const Index> g) {
      return static_cast<Index>(g[0]) + 1;
    };
    init.real["B"] = [](std::span<const Index>) { return 0.0; };
    init.real["C"] = [](std::span<const Index>) { return 0.0; };
    interp::RunOptions ro;
    ro.exec_plans = plans;
    try {
      (void)interp::run_compiled(compiled, m, init, ro);
      FAIL() << "expected an out-of-range diagnostic (plans=" << plans << ")";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("A"), std::string::npos)
          << e.what();
    }
  }
}

/// execute_write with a sum combiner gives duplicate destination ids
/// accumulate semantics (every processor's iterations hit the same two
/// cells); integer-valued doubles keep the sum order-independent bitwise.
TEST(IrregularEdges, DuplicateScatterDestinationsAccumulateWithCombine) {
  for (int p : {1, 2, 4}) {
    on_machine(p, [&](comm::GridComm& gc) {
      const Index n = 12;
      Dad dad = block1d(n, gc.grid(), 0, 0);
      DistArray<double> a(dad, gc);
      std::vector<Index> my_dests;
      std::vector<double> my_vals;
      const Index cnt = dad.local_extent(0, gc.coord(0));
      for (Index l = 0; l < cnt; ++l) {
        const Index i = dad.global_of_local(0, l, gc.coord(0));
        my_dests.push_back(i % 2);  // everything lands on cell 0 or 1
        my_vals.push_back(static_cast<double>(i + 1));
      }
      auto sched = parti::schedule3(gc, dad, my_dests);
      parti::execute_write<double>(
          gc, *sched, a, std::span<const double>(my_vals),
          [](const double& x, const double& y) { return x + y; });
      auto full = a.gather_global(gc);
      // Sum of odd-indexed vs even-indexed contributions of 1..n.
      double even = 0, odd = 0;
      for (Index i = 0; i < n; ++i) (i % 2 == 0 ? even : odd) += i + 1;
      EXPECT_EQ(full[0], even) << "p=" << p;
      EXPECT_EQ(full[1], odd) << "p=" << p;
      for (Index i = 2; i < n; ++i)
        EXPECT_EQ(full[static_cast<size_t>(i)], 0.0) << "p=" << p;
    });
  }
}

std::string zero_trip_source(int n, int p) {
  return strformat(R"(PROGRAM ZT
      INTEGER N
      PARAMETER (N = %d)
      REAL A(N)
      REAL B(N)
      INTEGER U(N)
      INTEGER V(N)
      INTEGER IT
C$ PROCESSORS P(%d)
C$ TEMPLATE T(N)
C$ DISTRIBUTE T(BLOCK)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
      DO IT = 1, 3
        FORALL (I = 5:4) A(U(I)) = B(V(I))
      END DO
      END PROGRAM ZT
)",
                   n, p);
}

/// A zero-trip irregular FORALL must not run its inspector: no schedules
/// are built, nothing is exchanged, and the destination stays untouched —
/// even though the statement carries gather and scatter actions.
TEST(IrregularEdges, ZeroTripForallBuildsNoSchedules) {
  const int n = 8;
  for (int p : {1, 3}) {
    auto compiled = compile::compile_source(zero_trip_source(n, p));
    machine::SimMachine m = harness::make_machine(p);
    interp::Init init;
    init.ints["U"] = [](std::span<const Index>) { return 1; };
    init.ints["V"] = [](std::span<const Index>) { return 1; };
    init.real["A"] = [](std::span<const Index> g) { return g[0] * 3.0; };
    init.real["B"] = [](std::span<const Index> g) { return g[0] * 7.0; };
    auto result = interp::run_compiled(compiled, m, init);
    EXPECT_EQ(result.schedule_misses, 0) << "p=" << p;
    EXPECT_EQ(result.schedule_hits, 0) << "p=" << p;
    EXPECT_EQ(result.schedules_built, 0) << "p=" << p;
    const auto& a = result.real_arrays.at("A");
    for (Index i = 0; i < n; ++i)
      EXPECT_EQ(a[static_cast<size_t>(i)], i * 3.0) << "p=" << p;
  }
}

/// gather_global_root must reproduce gather_global's result exactly on the
/// logical root (and stay empty elsewhere) for every distribution kind the
/// DAD supports — the root reconstructs each sender's global indices from
/// the DAD instead of receiving {index,value} pairs, so a placement slip
/// would silently permute the collected array.
TEST(GatherGlobalRoot, MatchesAllGatherAcrossDistributions) {
  struct Case {
    DistKind kind;
    rts::Index block;  // CYCLIC(k) block size
  };
  const Case cases[] = {{DistKind::kBlock, 1},
                        {DistKind::kCyclic, 1},
                        {DistKind::kCyclic, 3}};
  for (int p : {1, 2, 4}) {
    for (const Case& c : cases) {
      on_machine(p, [&](comm::GridComm& gc) {
        const Index n = 19;  // deliberately not divisible by p
        DistArray<double> a(
            harness::dist1d(n, gc.grid(), c.kind, 0, 0, c.block), gc);
        a.fill_global([](std::span<const Index> g) { return 2.0 + 5.0 * g[0]; });
        auto all = a.gather_global(gc);
        auto root = a.gather_global_root(gc);
        if (gc.my_logical() == 0) {
          ASSERT_EQ(root.size(), all.size());
          for (size_t i = 0; i < all.size(); ++i)
            EXPECT_DOUBLE_EQ(root[i], all[i]) << "p=" << p << " i=" << i;
        } else {
          EXPECT_TRUE(root.empty());
        }
      });
    }
  }
}

/// Same equivalence on a 2-D (BLOCK, BLOCK) array over a 2x2 grid, where
/// row-major placement must interleave the four processors' blocks.
TEST(GatherGlobalRoot, TwoDimensionalBlocks) {
  const int p = 2, q = 2;
  machine::SimMachine m(p * q, machine::CostModel::ipsc860(),
                        machine::make_hypercube());
  m.run([&](machine::Proc& proc) {
    comm::GridComm gc(proc, comm::ProcGrid({p, q}));
    const Index n = 6, nn = 5;  // uneven second extent
    DimMap m0, m1;
    m0.kind = m1.kind = DistKind::kBlock;
    m0.grid_dim = 0;
    m1.grid_dim = 1;
    m0.template_extent = n;
    m1.template_extent = nn;
    DistArray<double> a(Dad({n, nn}, {m0, m1}, gc.grid()), gc);
    a.fill_global([](std::span<const Index> g) {
      return 100.0 * static_cast<double>(g[0]) + static_cast<double>(g[1]);
    });
    auto all = a.gather_global(gc);
    auto root = a.gather_global_root(gc);
    if (gc.my_logical() == 0) {
      ASSERT_EQ(root.size(), all.size());
      for (size_t i = 0; i < all.size(); ++i)
        EXPECT_DOUBLE_EQ(root[i], all[i]) << "i=" << i;
    } else {
      EXPECT_TRUE(root.empty());
    }
  });
}

}  // namespace
}  // namespace f90d
