// Run-time library edge cases at grid boundaries: overlap/temporary shifts
// that wrap (or must not wrap) at the ends of the processor grid, shifts
// that spill across multiple processors, empty local blocks when P > N, and
// remap-based redistribution round trips.
#include <gtest/gtest.h>

#include "comm/grid_comm.hpp"
#include "harness.hpp"
#include "machine/topology.hpp"
#include "rts/dist_array.hpp"
#include "rts/remap.hpp"
#include "rts/shift_ops.hpp"

namespace f90d {
namespace {

using harness::on_machine;
using machine::CostModel;
using machine::SimMachine;
using rts::Dad;
using rts::DimMap;
using rts::DistArray;
using rts::DistKind;
using rts::Index;

Dad block1d(Index n, const comm::ProcGrid& g, int overlap_lo, int overlap_hi) {
  return harness::dist1d(n, g, DistKind::kBlock, overlap_lo, overlap_hi);
}

constexpr double kSentinel = -999.0;

/// Non-circular overlap shift: interior boundaries are exchanged, but the
/// grid-edge processor's ghost cells must be left untouched (EOSHIFT /
/// interior-only FORALL bounds semantics).
TEST(OverlapShift, EdgeProcessorGhostUntouchedWithoutWrap) {
  for (int p : {2, 4}) {
    on_machine(p, [&](comm::GridComm& gc) {
      const Index n = 16;
      DistArray<double> a(block1d(n, gc.grid(), 0, 1), gc);
      a.fill_global([](std::span<const Index> g) { return g[0] * 1.0; });
      const Index lext = a.local_extent(0);
      const std::vector<Index> ghost{lext};
      a.at_local(ghost) = kSentinel;

      rts::overlap_shift(gc, a, 0, +1, /*circular=*/false);

      if (gc.coord(0) < p - 1) {
        // My high ghost holds my successor's first element.
        const Index next_first = a.dad().global_of_local(0, 0, gc.coord(0) + 1);
        EXPECT_DOUBLE_EQ(a.at_local(ghost), static_cast<double>(next_first));
      } else {
        EXPECT_DOUBLE_EQ(a.at_local(ghost), kSentinel)
            << "edge processor ghost must stay untouched";
      }
    });
  }
}

/// Circular overlap shift: the last processor wraps around to the first
/// (CSHIFT), in both directions.
TEST(OverlapShift, CircularWrapsAtBothGridEdges) {
  const int p = 4;
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 16;
    DistArray<double> a(block1d(n, gc.grid(), 1, 1), gc);
    a.fill_global([](std::span<const Index> g) { return 10.0 + g[0]; });

    rts::overlap_shift(gc, a, 0, +1, /*circular=*/true);
    rts::overlap_shift(gc, a, 0, -1, /*circular=*/true);

    const Index lext = a.local_extent(0);
    const Index my_first = a.dad().global_of_local(0, 0, gc.coord(0));
    const Index my_last = my_first + lext - 1;
    const std::vector<Index> hi{lext};
    const std::vector<Index> lo{-1};
    EXPECT_DOUBLE_EQ(a.at_local(hi), 10.0 + (my_last + 1) % n);
    EXPECT_DOUBLE_EQ(a.at_local(lo), 10.0 + (my_first - 1 + n) % n);
  });
}

/// Shift amount equal to the full declared overlap width moves a multi-plane
/// slab in one exchange.
TEST(OverlapShift, FullWidthSlabExchange) {
  const int p = 4;
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 16;
    const int width = 2;
    DistArray<double> a(block1d(n, gc.grid(), 0, width), gc);
    a.fill_global([](std::span<const Index> g) { return g[0] * 1.0; });

    rts::overlap_shift(gc, a, 0, width, /*circular=*/true);

    const Index lext = a.local_extent(0);
    const Index my_first = a.dad().global_of_local(0, 0, gc.coord(0));
    for (int k = 0; k < width; ++k) {
      const std::vector<Index> ghost{lext + k};
      EXPECT_DOUBLE_EQ(a.at_local(ghost),
                       static_cast<double>((my_first + lext + k) % n));
    }
  });
}

/// P > N: trailing processors own zero elements; the collective shift must
/// still terminate and fill the ghosts that exist.
TEST(OverlapShift, EmptyLocalBlocksWhenMoreProcsThanElements) {
  const int p = 4;
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 3;  // block(1,1,1,0): last processor is empty
    DistArray<double> a(block1d(n, gc.grid(), 0, 1), gc);
    a.fill_global([](std::span<const Index> g) { return 5.0 + g[0]; });

    rts::overlap_shift(gc, a, 0, +1, /*circular=*/false);

    const Index lext = a.local_extent(0);
    if (lext > 0 && gc.coord(0) + 1 < p &&
        a.dad().local_extent(0, gc.coord(0) + 1) > 0) {
      const std::vector<Index> ghost{lext};
      const Index next_first = a.dad().global_of_local(0, 0, gc.coord(0) + 1);
      EXPECT_DOUBLE_EQ(a.at_local(ghost), 5.0 + next_first);
    }
  });
}

/// 2-D (BLOCK, BLOCK): shifting along the second dimension exchanges a
/// non-contiguous column slab; row boundaries must be preserved exactly.
TEST(OverlapShift, TwoDimensionalColumnSlab) {
  const int p = 2, q = 2;
  SimMachine m(p * q, CostModel::ipsc860(), machine::make_hypercube());
  m.run([&](machine::Proc& proc) {
    comm::GridComm gc(proc, comm::ProcGrid({p, q}));
    const Index n = 8;
    DimMap mr, mc;
    mr.kind = DistKind::kBlock;
    mr.grid_dim = 0;
    mr.template_extent = n;
    mc.kind = DistKind::kBlock;
    mc.grid_dim = 1;
    mc.template_extent = n;
    mc.overlap_hi = 1;
    DistArray<double> a(Dad({n, n}, {mr, mc}, gc.grid()), gc);
    a.fill_global(
        [](std::span<const Index> g) { return g[0] * 100.0 + g[1]; });

    rts::overlap_shift(gc, a, 1, +1, /*circular=*/false);

    if (gc.coord(1) + 1 < q) {
      const Index rows = a.local_extent(0);
      const Index cols = a.local_extent(1);
      const Index next_col = a.dad().global_of_local(1, 0, gc.coord(1) + 1);
      for (Index r = 0; r < rows; ++r) {
        const std::vector<Index> ghost{r, cols};
        const Index gr = a.dad().global_of_local(0, r, gc.coord(0));
        EXPECT_DOUBLE_EQ(a.at_local(ghost), gr * 100.0 + next_col);
      }
    }
  });
}

/// temporary_shift with an amount larger than the local block spills across
/// multiple processors; out-of-range elements stay at the zero fill.
TEST(TemporaryShift, MultiProcessorSpillNonCircular) {
  const int p = 4;
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 16, amount = 6;  // block size 4: spills two procs over
    DistArray<double> a(block1d(n, gc.grid(), 0, 0), gc);
    a.fill_global([](std::span<const Index> g) { return 1.0 + g[0]; });

    DistArray<double> tmp =
        rts::temporary_shift(gc, a, 0, amount, /*circular=*/false);

    tmp.for_each_owned([&](const std::vector<Index>& g, double& v) {
      const Index src = g[0] + amount;
      if (src < n)
        EXPECT_DOUBLE_EQ(v, 1.0 + src) << "tmp(" << g[0] << ")";
      else
        EXPECT_DOUBLE_EQ(v, 0.0) << "out-of-range tmp(" << g[0] << ")";
    });
  });
}

/// Circular temporary shift wraps through the grid edge in both directions,
/// including |amount| > N (reduces mod N).
TEST(TemporaryShift, CircularWrapAndNegativeAmounts) {
  const int p = 4;
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 12;
    DistArray<double> a(block1d(n, gc.grid(), 0, 0), gc);
    a.fill_global([](std::span<const Index> g) { return 2.0 * g[0]; });

    for (Index amount : {Index{5}, Index{-5}, Index{n + 2}}) {
      DistArray<double> tmp =
          rts::temporary_shift(gc, a, 0, amount, /*circular=*/true);
      tmp.for_each_owned([&](const std::vector<Index>& g, double& v) {
        const Index src = ((g[0] + amount) % n + n) % n;
        EXPECT_DOUBLE_EQ(v, 2.0 * src)
            << "tmp(" << g[0] << ") amount " << amount;
      });
    }
  });
}

/// redistribute (remap with the identity map) preserves every element across
/// a BLOCK -> CYCLIC -> BLOCK round trip — the paper's automatic
/// redistribution at subroutine boundaries.
TEST(Remap, BlockCyclicRoundTripPreservesValues) {
  for (int p : {2, 4}) {
    on_machine(p, [&](comm::GridComm& gc) {
      const Index n = 19;  // deliberately not divisible by p
      DistArray<double> a(block1d(n, gc.grid(), 0, 0), gc);
      a.fill_global([](std::span<const Index> g) { return 7.0 + 3.0 * g[0]; });

      DimMap mc;
      mc.kind = DistKind::kCyclic;
      mc.grid_dim = 0;
      mc.template_extent = n;
      Dad cyclic({n}, {mc}, gc.grid());

      DistArray<double> c = rts::redistribute(gc, a, cyclic);
      c.for_each_owned([&](const std::vector<Index>& g, double& v) {
        EXPECT_DOUBLE_EQ(v, 7.0 + 3.0 * g[0]);
      });

      DistArray<double> back = rts::redistribute(gc, c, a.dad());
      back.for_each_owned([&](const std::vector<Index>& g, double& v) {
        EXPECT_DOUBLE_EQ(v, 7.0 + 3.0 * g[0]);
      });
    });
  }
}

/// BLOCK -> CYCLIC(k) -> BLOCK for k in {2, 3}: the block-cyclic descriptor
/// must route every element to its new owner and back without loss, on a
/// size that leaves ragged trailing blocks.
TEST(Remap, BlockCyclicKRoundTripPreservesValues) {
  for (int p : {2, 4}) {
    for (Index k : {Index{2}, Index{3}}) {
      on_machine(p, [&](comm::GridComm& gc) {
        const Index n = 23;  // not divisible by k*p: ragged last course
        DistArray<double> a(block1d(n, gc.grid(), 0, 0), gc);
        a.fill_global([](std::span<const Index> g) { return 1.5 + 2.0 * g[0]; });

        DistArray<double> c = rts::redistribute(
            gc, a,
            harness::dist1d(n, gc.grid(), DistKind::kCyclic, 0, 0, k));
        c.for_each_owned([&](const std::vector<Index>& g, double& v) {
          EXPECT_DOUBLE_EQ(v, 1.5 + 2.0 * g[0]) << "k=" << k;
        });

        DistArray<double> back = rts::redistribute(gc, c, a.dad());
        back.for_each_owned([&](const std::vector<Index>& g, double& v) {
          EXPECT_DOUBLE_EQ(v, 1.5 + 2.0 * g[0]) << "k=" << k;
        });
      });
    }
  }
}

/// CYCLIC(2) -> CYCLIC(3): redistribution between two block-cyclic layouts
/// with different block sizes (the mappings interleave differently, so
/// almost every element moves).
TEST(Remap, CyclicTwoToCyclicThreePreservesValues) {
  const int p = 4;
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 26;
    DistArray<double> a(
        harness::dist1d(n, gc.grid(), DistKind::kCyclic, 0, 0, 2), gc);
    a.fill_global([](std::span<const Index> g) { return 4.0 - 0.5 * g[0]; });

    DistArray<double> c = rts::redistribute(
        gc, a, harness::dist1d(n, gc.grid(), DistKind::kCyclic, 0, 0, 3));
    c.for_each_owned([&](const std::vector<Index>& g, double& v) {
      EXPECT_DOUBLE_EQ(v, 4.0 - 0.5 * g[0]);
    });
  });
}

/// temporary_shift on a CYCLIC(k) array: the shifted temporary is exact for
/// amounts that cross block and course boundaries, both directions.
TEST(TemporaryShift, BlockCyclicShiftsAcrossBlockBoundaries) {
  const int p = 4;
  on_machine(p, [&](comm::GridComm& gc) {
    const Index n = 21;
    DistArray<double> a(
        harness::dist1d(n, gc.grid(), DistKind::kCyclic, 0, 0, 2), gc);
    a.fill_global([](std::span<const Index> g) { return 3.0 * g[0] + 1.0; });

    for (Index amount : {Index{1}, Index{-1}, Index{3}, Index{10}}) {
      DistArray<double> tmp =
          rts::temporary_shift(gc, a, 0, amount, /*circular=*/true);
      tmp.for_each_owned([&](const std::vector<Index>& g, double& v) {
        const Index src = ((g[0] + amount) % n + n) % n;
        EXPECT_DOUBLE_EQ(v, 3.0 * src + 1.0)
            << "tmp(" << g[0] << ") amount " << amount;
      });
    }
  });
}

}  // namespace
}  // namespace f90d
