// Run-time support system: DistArray, remap/redistribution, shifts, and
// the Table-3 intrinsics, each verified against a sequential oracle on a
// live simulated machine.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/grid_comm.hpp"
#include "machine/topology.hpp"
#include "rts/dist_array.hpp"
#include "rts/intrinsics.hpp"
#include "rts/matmul.hpp"
#include "rts/reductions.hpp"
#include "rts/remap.hpp"
#include "rts/shift_ops.hpp"

namespace f90d {
namespace {

using machine::CostModel;
using machine::SimMachine;
using rts::Dad;
using rts::DimMap;
using rts::DistArray;
using rts::DistKind;
using rts::Index;

Dad block1d(Index n, const comm::ProcGrid& g, DistKind k = DistKind::kBlock) {
  DimMap m;
  m.kind = k;
  m.grid_dim = 0;
  m.template_extent = n;
  return Dad({n}, {m}, g);
}

Dad block2d(Index r, Index c, const comm::ProcGrid& g, DistKind k0,
            DistKind k1) {
  DimMap m0;
  m0.kind = k0;
  m0.grid_dim = 0;
  m0.template_extent = r;
  DimMap m1;
  m1.kind = k1;
  m1.grid_dim = k0 == DistKind::kCollapsed ? 0 : 1;
  m1.template_extent = c;
  return Dad({r, c}, {m0, m1}, g);
}

template <typename F>
void on_machine(std::vector<int> dims, F&& body) {
  int p = 1;
  for (int d : dims) p *= d;
  SimMachine m(p, CostModel::ideal(), machine::make_hypercube());
  m.run([&](machine::Proc& proc) {
    comm::GridComm gc(proc, comm::ProcGrid(dims));
    body(gc);
  });
}

class RtsProcs : public ::testing::TestWithParam<int> {};

TEST_P(RtsProcs, FillGatherRoundTrip) {
  const int p = GetParam();
  on_machine({p}, [&](comm::GridComm& gc) {
    DistArray<double> a(block1d(37, gc.grid()), gc);
    a.fill_global([](std::span<const Index> g) { return g[0] * 3.0 + 1; });
    auto full = a.gather_global(gc);
    ASSERT_EQ(full.size(), 37u);
    for (Index g = 0; g < 37; ++g)
      EXPECT_DOUBLE_EQ(full[static_cast<size_t>(g)], g * 3.0 + 1);
  });
}

TEST_P(RtsProcs, RedistributeBlockCyclicRoundTrip) {
  const int p = GetParam();
  on_machine({p}, [&](comm::GridComm& gc) {
    DistArray<double> a(block1d(41, gc.grid(), DistKind::kBlock), gc);
    a.fill_global([](std::span<const Index> g) { return g[0] * 1.0; });
    auto cyc = rts::redistribute(gc, a, block1d(41, gc.grid(), DistKind::kCyclic));
    auto back = rts::redistribute(gc, cyc, a.dad());
    auto full = back.gather_global(gc);
    for (Index g = 0; g < 41; ++g)
      EXPECT_DOUBLE_EQ(full[static_cast<size_t>(g)], g * 1.0);
  });
}

TEST_P(RtsProcs, CshiftMatchesFortranSemantics) {
  const int p = GetParam();
  on_machine({p}, [&](comm::GridComm& gc) {
    const Index n = 23;
    DistArray<double> a(block1d(n, gc.grid()), gc);
    a.fill_global([](std::span<const Index> g) { return g[0] * 1.0; });
    for (Index sh : {1, 3, -2, 25}) {
      auto r = rts::cshift(gc, a, 0, sh);
      auto full = r.gather_global(gc);
      for (Index i = 0; i < n; ++i)
        EXPECT_DOUBLE_EQ(full[static_cast<size_t>(i)],
                         static_cast<double>(((i + sh) % n + n) % n))
            << "shift " << sh << " at " << i;
    }
  });
}

TEST_P(RtsProcs, EoshiftFillsBoundary) {
  const int p = GetParam();
  on_machine({p}, [&](comm::GridComm& gc) {
    const Index n = 19;
    DistArray<double> a(block1d(n, gc.grid()), gc);
    a.fill_global([](std::span<const Index> g) { return g[0] + 1.0; });
    auto r = rts::eoshift(gc, a, 0, 2, -7.0);
    auto full = r.gather_global(gc);
    for (Index i = 0; i < n; ++i) {
      const double expect = i + 2 < n ? i + 3.0 : -7.0;
      EXPECT_DOUBLE_EQ(full[static_cast<size_t>(i)], expect);
    }
  });
}

TEST_P(RtsProcs, ReductionsMatchOracle) {
  const int p = GetParam();
  on_machine({p}, [&](comm::GridComm& gc) {
    const Index n = 33;
    DistArray<double> a(block1d(n, gc.grid()), gc);
    a.fill_global([](std::span<const Index> g) {
      return static_cast<double>((g[0] * 29 + 5) % 17);
    });
    double sum = 0, mx = -1e300, mn = 1e300;
    Index mxloc = -1;
    for (Index i = 0; i < n; ++i) {
      const double v = static_cast<double>((i * 29 + 5) % 17);
      sum += v;
      if (v > mx) {
        mx = v;
        mxloc = i;
      }
      mn = std::min(mn, v);
    }
    EXPECT_DOUBLE_EQ(rts::global_sum(gc, a), sum);
    EXPECT_DOUBLE_EQ(rts::global_maxval(gc, a), mx);
    EXPECT_DOUBLE_EQ(rts::global_minval(gc, a), mn);
    auto ml = rts::global_maxloc(gc, a);
    EXPECT_DOUBLE_EQ(ml.value, mx);
    EXPECT_EQ(ml.flat, mxloc);  // first-max tie-break
    EXPECT_DOUBLE_EQ(rts::dot_product(gc, a, a),
                     [&] {
                       double s = 0;
                       for (Index i = 0; i < n; ++i) {
                         const double v = static_cast<double>((i * 29 + 5) % 17);
                         s += v * v;
                       }
                       return s;
                     }());
  });
}

TEST_P(RtsProcs, CountAnyAll) {
  const int p = GetParam();
  on_machine({p}, [&](comm::GridComm& gc) {
    const Index n = 29;
    DistArray<unsigned char> mask(block1d(n, gc.grid()), gc);
    mask.fill_global([](std::span<const Index> g) {
      return static_cast<unsigned char>(g[0] % 3 == 0);
    });
    EXPECT_EQ(rts::global_count(gc, mask), (n + 2) / 3);
    EXPECT_TRUE(rts::global_any(gc, mask));
    EXPECT_FALSE(rts::global_all(gc, mask));
  });
}

TEST_P(RtsProcs, PackUnpackRoundTrip) {
  const int p = GetParam();
  on_machine({p}, [&](comm::GridComm& gc) {
    const Index n = 24;
    DistArray<double> a(block1d(n, gc.grid()), gc);
    DistArray<unsigned char> mask(block1d(n, gc.grid()), gc);
    a.fill_global([](std::span<const Index> g) { return g[0] + 0.5; });
    mask.fill_global([](std::span<const Index> g) {
      return static_cast<unsigned char>(g[0] % 2 == 1);
    });
    const Index cnt = n / 2;
    auto packed = rts::pack(gc, a, mask, block1d(cnt, gc.grid()));
    auto pfull = packed.gather_global(gc);
    for (Index k = 0; k < cnt; ++k)
      EXPECT_DOUBLE_EQ(pfull[static_cast<size_t>(k)], 2 * k + 1 + 0.5);
    DistArray<double> field(block1d(n, gc.grid()), gc);
    field.fill_global([](std::span<const Index>) { return -1.0; });
    auto un = rts::unpack(gc, packed, mask, field);
    auto ufull = un.gather_global(gc);
    for (Index i = 0; i < n; ++i)
      EXPECT_DOUBLE_EQ(ufull[static_cast<size_t>(i)],
                       i % 2 == 1 ? i + 0.5 : -1.0);
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, RtsProcs, ::testing::Values(1, 2, 4, 8));

TEST(RtsGrid2D, TransposeMatchesOracle) {
  on_machine({2, 2}, [&](comm::GridComm& gc) {
    const Index r = 12, c = 8;
    DistArray<double> a(
        block2d(r, c, gc.grid(), DistKind::kBlock, DistKind::kBlock), gc);
    a.fill_global([&](std::span<const Index> g) {
      return static_cast<double>(g[0] * c + g[1]);
    });
    auto t = rts::transpose(gc, a);
    auto full = t.gather_global(gc);
    for (Index i = 0; i < c; ++i)
      for (Index j = 0; j < r; ++j)
        EXPECT_DOUBLE_EQ(full[static_cast<size_t>(i * r + j)],
                         static_cast<double>(j * c + i));
  });
}

TEST(RtsGrid2D, SpreadReplicatesAlongNewDim) {
  on_machine({4}, [&](comm::GridComm& gc) {
    DistArray<double> a(block1d(8, gc.grid()), gc);
    a.fill_global([](std::span<const Index> g) { return g[0] * 2.0; });
    auto s = rts::spread(gc, a, 0, 3);  // result (3, 8)
    auto full = s.gather_global(gc);
    ASSERT_EQ(full.size(), 24u);
    for (Index k = 0; k < 3; ++k)
      for (Index i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(full[static_cast<size_t>(k * 8 + i)], i * 2.0);
  });
}

TEST(RtsGrid2D, ReshapeColumnMajorOrder) {
  on_machine({4}, [&](comm::GridComm& gc) {
    // RESHAPE((6), (2,3)) in Fortran order: element (i,j) gets src(i + 2*j).
    DistArray<double> a(block1d(6, gc.grid()), gc);
    a.fill_global([](std::span<const Index> g) { return g[0] * 1.0; });
    DimMap m0;
    m0.kind = DistKind::kBlock;
    m0.grid_dim = 0;
    m0.template_extent = 2;
    DimMap m1;
    m1.kind = DistKind::kCollapsed;
    m1.template_extent = 3;
    Dad dest({2, 3}, {m0, m1}, gc.grid());
    auto r = rts::reshape(gc, a, dest);
    auto full = r.gather_global(gc);  // row-major (2,3)
    for (Index i = 0; i < 2; ++i)
      for (Index j = 0; j < 3; ++j)
        EXPECT_DOUBLE_EQ(full[static_cast<size_t>(i * 3 + j)],
                         static_cast<double>(i + 2 * j));
  });
}

TEST(RtsGrid2D, MatmulFoxMatchesOracle) {
  on_machine({2, 2}, [&](comm::GridComm& gc) {
    const Index n = 8;
    Dad dad = block2d(n, n, gc.grid(), DistKind::kBlock, DistKind::kBlock);
    DistArray<double> a(dad, gc), b(dad, gc);
    a.fill_global([&](std::span<const Index> g) {
      return static_cast<double>((g[0] * 3 + g[1]) % 5);
    });
    b.fill_global([&](std::span<const Index> g) {
      return static_cast<double>((g[0] + 2 * g[1]) % 7);
    });
    ASSERT_TRUE(rts::fox_applicable(a, b));
    auto c = rts::matmul_dist(gc, a, b);
    auto full = c.gather_global(gc);
    for (Index i = 0; i < n; ++i)
      for (Index j = 0; j < n; ++j) {
        double s = 0;
        for (Index k = 0; k < n; ++k)
          s += static_cast<double>((i * 3 + k) % 5) *
               static_cast<double>((k + 2 * j) % 7);
        EXPECT_DOUBLE_EQ(full[static_cast<size_t>(i * n + j)], s);
      }
  });
}

TEST(RtsGrid2D, MatvecMatchesOracle) {
  on_machine({2, 2}, [&](comm::GridComm& gc) {
    const Index n = 10;
    Dad dad = block2d(n, n, gc.grid(), DistKind::kBlock, DistKind::kBlock);
    DistArray<double> a(dad, gc);
    DistArray<double> x(block1d(n, gc.grid()), gc);
    a.fill_global([&](std::span<const Index> g) {
      return static_cast<double>(g[0] + g[1]);
    });
    x.fill_global([](std::span<const Index> g) { return g[0] * 1.0 + 1; });
    auto y = rts::matvec_dist(gc, a, x);
    auto full = y.gather_global(gc);
    for (Index i = 0; i < n; ++i) {
      double s = 0;
      for (Index k = 0; k < n; ++k) s += (i + k) * (k + 1.0);
      EXPECT_DOUBLE_EQ(full[static_cast<size_t>(i)], s);
    }
  });
}

TEST(ShiftOps, OverlapShiftFillsGhostCells) {
  on_machine({4}, [&](comm::GridComm& gc) {
    const Index n = 16;
    Dad dad = block1d(n, gc.grid());
    dad.dim(0).overlap_lo = 1;
    dad.dim(0).overlap_hi = 1;
    DistArray<double> a(dad, gc);
    a.fill_global([](std::span<const Index> g) { return g[0] * 10.0; });
    rts::overlap_shift(gc, a, 0, +1);  // ghost-hi <- next block's first
    rts::overlap_shift(gc, a, 0, -1);  // ghost-lo <- prev block's last
    // Interior elements can now resolve A(i+1) and A(i-1) locally.
    for (Index g = 1; g + 1 < n; ++g) {
      std::vector<Index> gi{g};
      if (!a.owns_global(gi)) continue;
      std::vector<Index> up{g + 1}, dn{g - 1};
      EXPECT_DOUBLE_EQ(a.at_global_ghost(up), (g + 1) * 10.0);
      EXPECT_DOUBLE_EQ(a.at_global_ghost(dn), (g - 1) * 10.0);
    }
  });
}

TEST(ShiftOps, TemporaryShiftArbitraryAmount) {
  on_machine({4}, [&](comm::GridComm& gc) {
    const Index n = 16;
    DistArray<double> a(block1d(n, gc.grid()), gc);
    a.fill_global([](std::span<const Index> g) { return g[0] * 1.0; });
    // Shift by more than a whole block: elements hop multiple processors.
    auto t = rts::temporary_shift(gc, a, 0, 9, /*circular=*/false);
    auto full = t.gather_global(gc);
    for (Index i = 0; i < n; ++i) {
      const double expect = i + 9 < n ? i + 9.0 : 0.0;
      EXPECT_DOUBLE_EQ(full[static_cast<size_t>(i)], expect);
    }
  });
}

}  // namespace
}  // namespace f90d
