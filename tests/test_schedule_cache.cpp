// ScheduleCache reuse semantics (paper §7 optimization 3): identical index
// sets on identically distributed arrays must hit the cache; changing the
// distribution (and hence the DAD signature in the key) must miss.  Both the
// cache object itself and the end-to-end compiled path are covered.
#include <gtest/gtest.h>

#include "comm/grid_comm.hpp"
#include "harness.hpp"
#include "machine/topology.hpp"
#include "parti/schedule.hpp"
#include "parti/schedule_cache.hpp"
#include "rts/dist_array.hpp"

namespace f90d {
namespace {

using harness::dist1d;
using harness::on_machine;
using parti::ScheduleCache;
using parti::SchedulePtr;
using rts::Dad;
using rts::DistKind;
using rts::Index;

TEST(ScheduleCache, HitOnIdenticalKeyReturnsSamePointer) {
  ScheduleCache cache;
  int builds = 0;
  auto build = [&] {
    ++builds;
    return std::make_shared<const parti::Schedule>();
  };
  SchedulePtr a = cache.get_or_build("k1", build);
  SchedulePtr b = cache.get_or_build("k1", build);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ScheduleCache, MissOnDifferentKey) {
  ScheduleCache cache;
  int builds = 0;
  auto build = [&] {
    ++builds;
    return std::make_shared<const parti::Schedule>();
  };
  (void)cache.get_or_build("k1", build);
  (void)cache.get_or_build("k2", build);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 2);
}

TEST(ScheduleCache, DisabledCacheAlwaysRebuildsAndNeverMemoizes) {
  ScheduleCache cache;
  cache.set_enabled(false);
  int builds = 0;
  auto build = [&] {
    ++builds;
    return std::make_shared<const parti::Schedule>();
  };
  (void)cache.get_or_build("k1", build);
  (void)cache.get_or_build("k1", build);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ScheduleCache, ClearResetsCountersAndEntries) {
  ScheduleCache cache;
  (void)cache.get_or_build(
      "k1", [] { return std::make_shared<const parti::Schedule>(); });
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
}

/// The key the compiler emits combines the DAD signature with the access
/// pattern: the same gather needs on the same distribution reuse the built
/// schedule, while a redistribution (BLOCK -> CYCLIC) changes the signature
/// and forces a rebuild.
TEST(ScheduleCache, GatherReusedAcrossStepsMissesOnRedistribution) {
  for (int p : {2, 4}) {
    on_machine(p, [&](comm::GridComm& gc) {
      const Index n = 32;
      Dad block = dist1d(n, gc.grid(), DistKind::kBlock);
      Dad cyclic = dist1d(n, gc.grid(), DistKind::kCyclic);

      // Each processor gathers the same permuted needs every "time step".
      std::vector<Index> needs;
      for (Index l = 0; l < block.local_extent(0, gc.coord(0)); ++l)
        needs.push_back((block.global_of_local(0, l, gc.coord(0)) * 7 + 3) % n);

      ScheduleCache cache;
      auto key_for = [&](const Dad& dad) {
        std::string key = "gather:" + dad.signature() + ":";
        for (Index g : needs) key += std::to_string(g) + ",";
        return key;
      };
      auto build_for = [&](const Dad& dad) {
        return [&gc, &dad, &needs] { return parti::schedule2(gc, dad, needs); };
      };

      SchedulePtr s1 = cache.get_or_build(key_for(block), build_for(block));
      SchedulePtr s2 = cache.get_or_build(key_for(block), build_for(block));
      EXPECT_EQ(s1.get(), s2.get()) << "identical index set must hit";
      EXPECT_EQ(cache.hits(), 1);
      EXPECT_EQ(cache.misses(), 1);

      SchedulePtr s3 = cache.get_or_build(key_for(cyclic), build_for(cyclic));
      EXPECT_NE(s1.get(), s3.get()) << "changed distribution must miss";
      EXPECT_EQ(cache.hits(), 1);
      EXPECT_EQ(cache.misses(), 2);

      // The reused schedule still routes values correctly.
      rts::DistArray<double> b(block, gc);
      b.fill_global([](std::span<const Index> g) { return g[0] * 3.0; });
      auto tmp = parti::gather(gc, *s2, b);
      ASSERT_EQ(tmp.size(), needs.size());
      for (size_t k = 0; k < needs.size(); ++k)
        EXPECT_DOUBLE_EQ(tmp[k], needs[k] * 3.0);
    });
  }
}

/// End-to-end: the irregular workload's repeated steps hit the cache when
/// RunOptions.schedule_cache is on and never hit when it is off.
TEST(ScheduleCache, CompiledIrregularHitsOnlyWithCacheEnabled) {
  const int n = 40, steps = 3, p = 4;
  auto compiled = compile::compile_source(apps::irregular_source(n, p, steps));
  interp::Init init;
  init.ints["U"] = [n](std::span<const Index> g) {
    return harness::irregular_u(n, g[0]) + 1;
  };
  init.ints["V"] = [n](std::span<const Index> g) {
    return harness::irregular_v(n, g[0]) + 1;
  };
  init.real["B"] = [](std::span<const Index> g) { return g[0] * 2.0; };
  init.real["C"] = [](std::span<const Index> g) { return g[0] * 100.0; };

  machine::SimMachine m1 = harness::make_machine(p);
  interp::RunOptions with_cache;
  auto cached = interp::run_compiled(compiled, m1, init, with_cache);
  EXPECT_GT(cached.schedule_hits, 0);

  machine::SimMachine m2 = harness::make_machine(p);
  interp::RunOptions no_cache;
  no_cache.schedule_cache = false;
  auto uncached = interp::run_compiled(compiled, m2, init, no_cache);
  EXPECT_EQ(uncached.schedule_hits, 0);

  // Caching is a pure optimization: both runs compute the same answer.
  const auto& a1 = cached.real_arrays.at("A");
  const auto& a2 = uncached.real_arrays.at("A");
  ASSERT_EQ(a1.size(), a2.size());
  for (size_t k = 0; k < a1.size(); ++k) EXPECT_DOUBLE_EQ(a1[k], a2[k]);
}

}  // namespace
}  // namespace f90d
