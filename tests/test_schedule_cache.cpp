// ScheduleCache reuse semantics (paper §7 optimization 3): identical index
// sets on identically distributed arrays must hit the cache; changing the
// distribution (and hence the DAD signature in the key) must miss.  Both the
// cache object itself and the end-to-end compiled path are covered.
#include <gtest/gtest.h>

#include "comm/grid_comm.hpp"
#include "harness.hpp"
#include "machine/topology.hpp"
#include "parti/schedule.hpp"
#include "parti/schedule_cache.hpp"
#include "rts/dist_array.hpp"

namespace f90d {
namespace {

using harness::dist1d;
using harness::on_machine;
using parti::ScheduleCache;
using parti::SchedulePtr;
using rts::Dad;
using rts::DistKind;
using rts::Index;

TEST(ScheduleCache, HitOnIdenticalKeyReturnsSamePointer) {
  ScheduleCache cache;
  int builds = 0;
  auto build = [&] {
    ++builds;
    return std::make_shared<const parti::Schedule>();
  };
  SchedulePtr a = cache.get_or_build("k1", build);
  SchedulePtr b = cache.get_or_build("k1", build);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ScheduleCache, MissOnDifferentKey) {
  ScheduleCache cache;
  int builds = 0;
  auto build = [&] {
    ++builds;
    return std::make_shared<const parti::Schedule>();
  };
  (void)cache.get_or_build("k1", build);
  (void)cache.get_or_build("k2", build);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 2);
}

TEST(ScheduleCache, DisabledCacheAlwaysRebuildsAndNeverMemoizes) {
  ScheduleCache cache;
  cache.set_enabled(false);
  int builds = 0;
  auto build = [&] {
    ++builds;
    return std::make_shared<const parti::Schedule>();
  };
  (void)cache.get_or_build("k1", build);
  (void)cache.get_or_build("k1", build);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ScheduleCache, ClearResetsCountersAndEntries) {
  ScheduleCache cache;
  (void)cache.get_or_build(
      "k1", [] { return std::make_shared<const parti::Schedule>(); });
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
}

/// The key the compiler emits combines the DAD signature with the access
/// pattern: the same gather needs on the same distribution reuse the built
/// schedule, while a redistribution (BLOCK -> CYCLIC) changes the signature
/// and forces a rebuild.
TEST(ScheduleCache, GatherReusedAcrossStepsMissesOnRedistribution) {
  for (int p : {2, 4}) {
    on_machine(p, [&](comm::GridComm& gc) {
      const Index n = 32;
      Dad block = dist1d(n, gc.grid(), DistKind::kBlock);
      Dad cyclic = dist1d(n, gc.grid(), DistKind::kCyclic);

      // Each processor gathers the same permuted needs every "time step".
      std::vector<Index> needs;
      for (Index l = 0; l < block.local_extent(0, gc.coord(0)); ++l)
        needs.push_back((block.global_of_local(0, l, gc.coord(0)) * 7 + 3) % n);

      ScheduleCache cache;
      auto key_for = [&](const Dad& dad) {
        std::string key = "gather:" + dad.signature() + ":";
        for (Index g : needs) key += std::to_string(g) + ",";
        return key;
      };
      auto build_for = [&](const Dad& dad) {
        return [&gc, &dad, &needs] { return parti::schedule2(gc, dad, needs); };
      };

      SchedulePtr s1 = cache.get_or_build(key_for(block), build_for(block));
      SchedulePtr s2 = cache.get_or_build(key_for(block), build_for(block));
      EXPECT_EQ(s1.get(), s2.get()) << "identical index set must hit";
      EXPECT_EQ(cache.hits(), 1);
      EXPECT_EQ(cache.misses(), 1);

      SchedulePtr s3 = cache.get_or_build(key_for(cyclic), build_for(cyclic));
      EXPECT_NE(s1.get(), s3.get()) << "changed distribution must miss";
      EXPECT_EQ(cache.hits(), 1);
      EXPECT_EQ(cache.misses(), 2);

      // The reused schedule still routes values correctly.
      rts::DistArray<double> b(block, gc);
      b.fill_global([](std::span<const Index> g) { return g[0] * 3.0; });
      auto tmp = parti::gather(gc, *s2, b);
      ASSERT_EQ(tmp.size(), needs.size());
      for (size_t k = 0; k < needs.size(); ++k)
        EXPECT_DOUBLE_EQ(tmp[k], needs[k] * 3.0);
    });
  }
}

/// End-to-end: the irregular workload's repeated steps hit the cache when
/// RunOptions.schedule_cache is on and never hit when it is off.
TEST(ScheduleCache, CompiledIrregularHitsOnlyWithCacheEnabled) {
  const int n = 40, steps = 3, p = 4;
  auto compiled = compile::compile_source(apps::irregular_source(n, p, steps));
  interp::Init init;
  init.ints["U"] = [n](std::span<const Index> g) {
    return harness::irregular_u(n, g[0]) + 1;
  };
  init.ints["V"] = [n](std::span<const Index> g) {
    return harness::irregular_v(n, g[0]) + 1;
  };
  init.real["B"] = [](std::span<const Index> g) { return g[0] * 2.0; };
  init.real["C"] = [](std::span<const Index> g) { return g[0] * 100.0; };

  machine::SimMachine m1 = harness::make_machine(p);
  interp::RunOptions with_cache;
  auto cached = interp::run_compiled(compiled, m1, init, with_cache);
  EXPECT_GT(cached.schedule_hits, 0);

  machine::SimMachine m2 = harness::make_machine(p);
  interp::RunOptions no_cache;
  no_cache.schedule_cache = false;
  auto uncached = interp::run_compiled(compiled, m2, init, no_cache);
  EXPECT_EQ(uncached.schedule_hits, 0);

  // Caching is a pure optimization: both runs compute the same answer.
  const auto& a1 = cached.real_arrays.at("A");
  const auto& a2 = uncached.real_arrays.at("A");
  ASSERT_EQ(a1.size(), a2.size());
  for (size_t k = 0; k < a1.size(); ++k) EXPECT_DOUBLE_EQ(a1[k], a2[k]);
}

// --- invalidation contract ---------------------------------------------------

/// Entries registered with a dependency set are dropped when any member is
/// invalidated; legacy entries (no tracked deps) are never touched.
TEST(ScheduleCache, InvalidateArrayDropsDependentEntriesOnly) {
  ScheduleCache cache;
  auto mk = [] { return std::make_shared<const parti::Schedule>(); };
  (void)cache.get_or_build("g1", {"B", "U"}, mk);
  (void)cache.get_or_build("g2", {"B"}, mk);
  (void)cache.get_or_build("g3", mk);
  EXPECT_EQ(cache.size(), 3u);

  cache.invalidate_array("U");
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.invalidations(), 1);

  int builds = 0;
  auto count = [&] {
    ++builds;
    return std::make_shared<const parti::Schedule>();
  };
  (void)cache.get_or_build("g2", {"B"}, count);
  (void)cache.get_or_build("g3", count);
  EXPECT_EQ(builds, 0) << "entries without U in their deps must survive";
  (void)cache.get_or_build("g1", {"B", "U"}, count);
  EXPECT_EQ(builds, 1) << "the dependent entry must rebuild";

  cache.invalidate_array("B");
  EXPECT_EQ(cache.size(), 1u) << "only the dep-less legacy entry survives";
  EXPECT_EQ(cache.invalidations(), 3);

  cache.invalidate_array("NOSUCH");
  EXPECT_EQ(cache.invalidations(), 3);
}

/// Regression (stale-schedule bug): a gather schedule built from
/// indirection array U must NOT be reused after U's values change.  The
/// program rewrites U between DO trips; with the old behaviour the first
/// trip's schedule kept routing the original pattern and the result
/// silently diverged from the oracle.  Write versions embedded in the
/// runtime key force a rebuild on every mutated trip.
TEST(ScheduleCache, GatherRebuiltAfterIndirectionArrayRewritten) {
  const int n = 24, trips = 4;
  const std::string src = strformat(R"(PROGRAM IRRMUT
      INTEGER N
      PARAMETER (N = %d)
      REAL A(N)
      REAL B(N)
      INTEGER U(N)
      INTEGER IT
C$ PROCESSORS P(4)
C$ TEMPLATE T(N)
C$ DISTRIBUTE T(BLOCK)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
      DO IT = 1, %d
        FORALL (I = 1:N) A(I) = A(I) + B(U(I))
        FORALL (I = 1:N) U(I) = N + 1 - U(I)
      END DO
      END PROGRAM IRRMUT
)",
                                    n, trips);
  auto compiled = compile::compile_source(src);
  machine::SimMachine m = harness::make_machine(4);
  interp::Init init;
  auto u0 = [n](Index i) { return (i * 7 + 3) % n + 1; };  // 1-based
  init.ints["U"] = [&](std::span<const Index> g) { return u0(g[0]); };
  init.real["B"] = [](std::span<const Index> g) { return g[0] * 2.0 + 1.0; };
  auto result = interp::run_compiled(compiled, m, init);

  std::vector<double> a(static_cast<size_t>(n), 0.0);
  std::vector<long long> u(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) u[static_cast<size_t>(i)] = u0(i);
  for (int it = 0; it < trips; ++it) {
    for (int i = 0; i < n; ++i)
      a[static_cast<size_t>(i)] += (u[static_cast<size_t>(i)] - 1) * 2.0 + 1.0;
    for (int i = 0; i < n; ++i)
      u[static_cast<size_t>(i)] = n + 1 - u[static_cast<size_t>(i)];
  }
  const auto& got = result.real_arrays.at("A");
  ASSERT_EQ(got.size(), a.size());
  for (size_t k = 0; k < a.size(); ++k)
    EXPECT_DOUBLE_EQ(got[k], a[k]) << "k=" << k;

  // The write version is a counter, not a content hash: every trip sees a
  // fresh U version and must rebuild its gather schedule, even though U
  // only alternates between two value patterns.
  EXPECT_GE(result.schedule_misses, trips);
}

/// Steady state: with the indirection arrays untouched, every trip after
/// the first reuses the cached schedules (reuse >= trips - 1 per schedule).
TEST(ScheduleCache, SteadyStateReusesAcrossTrips) {
  const int n = 40, steps = 5, p = 4;
  auto compiled = compile::compile_source(apps::irregular_source(n, p, steps));
  interp::Init init;
  init.ints["U"] = [n](std::span<const Index> g) {
    return harness::irregular_u(n, g[0]) + 1;
  };
  init.ints["V"] = [n](std::span<const Index> g) {
    return harness::irregular_v(n, g[0]) + 1;
  };
  init.real["B"] = [](std::span<const Index> g) { return g[0] * 2.0; };
  init.real["C"] = [](std::span<const Index> g) { return g[0] * 100.0; };
  machine::SimMachine m = harness::make_machine(p);
  auto result = interp::run_compiled(compiled, m, init);
  EXPECT_GE(result.schedule_hits, steps - 1);
  EXPECT_EQ(result.schedule_invalidations, 0);
}

/// Whole-array intrinsic writes invalidate dependent schedules (the
/// redistribute/remap half of the contract) and the run still matches the
/// sequential oracle.
TEST(ScheduleCache, IntrinsicWriteInvalidatesDependentSchedules) {
  const int n = 16, trips = 3;
  const std::string src = strformat(R"(PROGRAM IRRSH
      INTEGER N
      PARAMETER (N = %d)
      REAL A(N)
      REAL B(N)
      INTEGER U(N)
      INTEGER IT
C$ PROCESSORS P(4)
C$ TEMPLATE T(N)
C$ DISTRIBUTE T(BLOCK)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
      DO IT = 1, %d
        FORALL (I = 1:N) A(I) = A(I) + B(U(I))
        B = CSHIFT(B, 1)
      END DO
      END PROGRAM IRRSH
)",
                                    n, trips);
  auto compiled = compile::compile_source(src);
  machine::SimMachine m = harness::make_machine(4);
  interp::Init init;
  auto u0 = [n](Index i) { return (i * 5 + 2) % n + 1; };
  init.ints["U"] = [&](std::span<const Index> g) { return u0(g[0]); };
  init.real["B"] = [](std::span<const Index> g) { return g[0] * 3.0 + 2.0; };
  auto result = interp::run_compiled(compiled, m, init);

  std::vector<double> a(static_cast<size_t>(n), 0.0);
  std::vector<double> b(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) b[static_cast<size_t>(i)] = i * 3.0 + 2.0;
  for (int it = 0; it < trips; ++it) {
    for (int i = 0; i < n; ++i)
      a[static_cast<size_t>(i)] += b[static_cast<size_t>(u0(i) - 1)];
    std::vector<double> nb(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
      nb[static_cast<size_t>(i)] = b[static_cast<size_t>((i + 1) % n)];
    b = std::move(nb);
  }
  const auto& got = result.real_arrays.at("A");
  ASSERT_EQ(got.size(), a.size());
  for (size_t k = 0; k < a.size(); ++k)
    EXPECT_DOUBLE_EQ(got[k], a[k]) << "k=" << k;
  EXPECT_GT(result.schedule_invalidations, 0)
      << "CSHIFT into the gather's data array must drop its schedule";
}

}  // namespace
}  // namespace f90d
