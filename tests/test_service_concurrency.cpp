// Concurrency contract of the resident service (docs/SERVICE.md): many
// worker threads pushing programs through one ServiceCore must produce
// bit-identical results to single-threaded runs, warm passes must be
// served entirely from the shared caches, and the process-global
// NativeCache must coalesce concurrent compiles of one source.  These
// tests are in the TSan leg's target list on purpose.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "native/jit.hpp"
#include "service/service.hpp"

namespace f90d {
namespace {

using service::Outcome;
using service::RunSpec;
using service::ServiceCore;

/// Same shape as the load generator's workload: self-initializing
/// irregular gather/scatter, `variant` perturbs N so each program is a
/// distinct artifact with distinct schedules.
std::string workload(int variant, int p) {
  char buf[1536];
  std::snprintf(buf, sizeof(buf), R"(PROGRAM CONC%d
      INTEGER N
      PARAMETER (N = %d)
      REAL A(N)
      REAL B(N)
      REAL C(N)
      INTEGER U(N)
      INTEGER V(N)
      INTEGER IT
C$ PROCESSORS P(%d)
C$ TEMPLATE T(N)
C$ DISTRIBUTE T(BLOCK)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
C$ ALIGN C(I) WITH T(I)
      FORALL (I = 1:N) U(I) = MOD(I * 7 + 3, N) + 1
      FORALL (I = 1:N) V(I) = MOD(I * 11 + 5, N) + 1
      FORALL (I = 1:N) B(I) = I * 2.0
      FORALL (I = 1:N) C(I) = I * 100.0
      DO IT = 1, 2
        FORALL (I = 1:N) A(U(I)) = B(V(I)) + C(I)
      END DO
      END PROGRAM CONC%d
)",
                variant, 48 + 16 * variant, p, variant);
  return buf;
}

/// Run `fn(i)` for i in [0, n) on `threads` threads.
template <typename Fn>
void fan_out(int n, int threads, Fn&& fn) {
  std::atomic<int> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    pool.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  for (std::thread& t : pool) t.join();
}

constexpr int kPrograms = 3;
constexpr int kThreads = 8;
constexpr int kRequests = 24;

TEST(ServiceConcurrency, ManyThreadsMatchSingleThreadedBitForBit) {
  std::vector<std::string> sources;
  std::vector<std::vector<double>> want;
  for (int k = 0; k < kPrograms; ++k) {
    sources.push_back(workload(k, 4));
    // Reference: the plain single-shot pipeline, no shared caches.
    const Outcome ref = service::compile_and_run(sources.back(), RunSpec{});
    ASSERT_TRUE(ref.ok) << ref.error;
    want.push_back(ref.result.real_arrays.at("A"));
  }

  ServiceCore core;
  std::vector<Outcome> got(kRequests);
  fan_out(kRequests, kThreads, [&](int i) {
    got[static_cast<std::size_t>(i)] =
        core.submit(sources[static_cast<std::size_t>(i) % kPrograms],
                    RunSpec{});
  });
  for (int i = 0; i < kRequests; ++i) {
    const Outcome& out = got[static_cast<std::size_t>(i)];
    ASSERT_TRUE(out.ok) << i << ": " << out.error;
    // Bit-identical, not approximately equal: sharing schedules and plan
    // metadata must not change a single operation.
    EXPECT_EQ(out.result.real_arrays.at("A"),
              want[static_cast<std::size_t>(i) % kPrograms])
        << "request " << i;
  }
  EXPECT_EQ(core.requests(), kRequests);
  EXPECT_EQ(core.failures(), 0);
}

TEST(ServiceConcurrency, WarmPassIsServedEntirelyFromSharedCaches) {
  std::vector<std::string> sources;
  for (int k = 0; k < kPrograms; ++k) sources.push_back(workload(k, 4));

  ServiceCore core;
  // Cold wave: populate the artifact cache and the shared stores.
  fan_out(kRequests, kThreads, [&](int i) {
    const Outcome out = core.submit(
        sources[static_cast<std::size_t>(i) % kPrograms], RunSpec{});
    ASSERT_TRUE(out.ok) << out.error;
  });

  // Warm wave: every artifact lookup must hit and no run may build a
  // schedule — the shared store already holds every complete set.
  std::atomic<long long> schedule_misses{0};
  std::atomic<long long> shared_schedule_hits{0};
  std::atomic<long long> shared_plan_hits{0};
  std::atomic<int> artifact_hits{0};
  fan_out(kRequests, kThreads, [&](int i) {
    const Outcome out = core.submit(
        sources[static_cast<std::size_t>(i) % kPrograms], RunSpec{});
    ASSERT_TRUE(out.ok) << out.error;
    artifact_hits += out.artifact_hit ? 1 : 0;
    schedule_misses += out.result.schedule_misses;
    shared_schedule_hits += out.result.shared_schedule_hits;
    shared_plan_hits += out.result.shared_plan_hits;
  });
  EXPECT_EQ(artifact_hits.load(), kRequests);
  EXPECT_EQ(schedule_misses.load(), 0);
  EXPECT_GT(shared_schedule_hits.load(), 0);
  EXPECT_GT(shared_plan_hits.load(), 0);
}

TEST(ServiceConcurrency, ArtifactCacheCoalescesIdenticalInFlightCompiles) {
  // One source, many simultaneous first requests: exactly one compile;
  // the rest either coalesce onto it or hit the finished entry.
  service::ArtifactCache cache;
  const std::string src = workload(0, 4);
  std::vector<service::ArtifactPtr> got(kThreads);
  fan_out(kThreads, kThreads,
          [&](int i) { got[static_cast<std::size_t>(i)] =
                           cache.get_or_compile(src, RunSpec{}); });
  for (const service::ArtifactPtr& a : got) {
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a.get(), got[0].get());
  }
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits + s.coalesced, kThreads - 1);
}

TEST(ServiceConcurrency, NativeCacheCoalescesConcurrentCompilesOfOneSource) {
  native::NativeCache& jit = native::NativeCache::instance();
  if (!jit.available())
    GTEST_SKIP() << "no native toolchain in this configuration";
  // A deliberately broken kernel source unique to this test: the compiler
  // runs exactly once, every thread gets the memoized nullptr, and the
  // waiters are counted as coalesced or served from the memo.
  const std::string bad_kernel =
      "#error test_service_concurrency coalesce probe\n";
  const native::JitStats before = jit.stats();
  std::vector<native::KernelFn> got(kThreads);
  fan_out(kThreads, kThreads, [&](int i) {
    got[static_cast<std::size_t>(i)] = jit.get_or_compile(bad_kernel);
  });
  const native::JitStats after = jit.stats();
  for (native::KernelFn fn : got) EXPECT_EQ(fn, nullptr);
  EXPECT_EQ(after.failures - before.failures, 1);
  EXPECT_EQ(after.compiles - before.compiles, 0);
  EXPECT_EQ((after.cache_hits - before.cache_hits) +
                (after.coalesced - before.coalesced),
            kThreads - 1);
}

TEST(ServiceConcurrency, ConcurrentNativeBackendRunsShareTheJit) {
  native::NativeCache& jit = native::NativeCache::instance();
  if (!jit.available())
    GTEST_SKIP() << "no native toolchain in this configuration";
  const std::string src = workload(0, 4);
  RunSpec spec;
  spec.run.native_backend = true;
  const Outcome ref = service::compile_and_run(src, spec);
  ASSERT_TRUE(ref.ok) << ref.error;

  ServiceCore core;
  std::vector<Outcome> got(kThreads);
  fan_out(kThreads, kThreads, [&](int i) {
    got[static_cast<std::size_t>(i)] = core.submit(src, spec);
  });
  for (const Outcome& out : got) {
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.result.real_arrays.at("A"), ref.result.real_arrays.at("A"));
  }
}

}  // namespace
}  // namespace f90d
