// Service core (src/service/service.hpp): artifact keys, the artifact
// cache, admission quotas, failure memoization, and the machine-readable
// stats documents (run_stats_json / ServiceCore::stats_json).
#include <gtest/gtest.h>

#include <string>

#include "service/service.hpp"
#include "service/stats_json.hpp"
#include "support/json.hpp"

namespace f90d {
namespace {

using service::ArtifactPtr;
using service::Outcome;
using service::RunSpec;
using service::ServiceCore;
using service::ServiceOptions;

/// Self-initializing irregular program (FORALL index-map setup), so it
/// runs correctly from zero-filled storage — the daemon's init contract.
std::string self_init_source(int n, int p) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), R"(PROGRAM SVC
      INTEGER N
      PARAMETER (N = %d)
      REAL A(N)
      REAL B(N)
      INTEGER U(N)
C$ PROCESSORS P(%d)
C$ TEMPLATE T(N)
C$ DISTRIBUTE T(BLOCK)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
      FORALL (I = 1:N) U(I) = MOD(I * 7 + 3, N) + 1
      FORALL (I = 1:N) B(I) = I * 2.0
      FORALL (I = 1:N) A(U(I)) = B(I) + 1.0
      END PROGRAM SVC
)",
                n, p);
  return buf;
}

TEST(ServiceKeys, StableAndSensitiveToSourceAndOptions) {
  const std::string src = self_init_source(64, 4);
  RunSpec spec;
  const std::string k = service::artifact_key(src, spec);
  EXPECT_EQ(k.size(), 16u);  // fnv1a hex64
  EXPECT_EQ(k, service::artifact_key(src, spec));

  EXPECT_NE(k, service::artifact_key(self_init_source(65, 4), spec));

  RunSpec grid_spec;
  grid_spec.grid = {2};
  EXPECT_NE(k, service::artifact_key(src, grid_spec));

  RunSpec o0_spec;
  o0_spec.codegen = compile::CodegenOptions::all_off();
  EXPECT_NE(k, service::artifact_key(src, o0_spec));

  // Run-only settings are NOT part of the compile key.
  RunSpec run_spec;
  run_spec.run.native_backend = true;
  run_spec.compile_only = true;
  EXPECT_EQ(k, service::artifact_key(src, run_spec));
}

TEST(ServiceArtifactCache, SecondLookupHitsAndSharesTheArtifact) {
  service::ArtifactCache cache;
  const std::string src = self_init_source(64, 4);
  const ArtifactPtr a = cache.get_or_compile(src, RunSpec{});
  const ArtifactPtr b = cache.get_or_compile(src, RunSpec{});
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a.get(), b.get());  // one immutable artifact, shared
  ASSERT_NE(a->compiled, nullptr);
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ServiceArtifactCache, CompileFailureIsMemoized) {
  service::ArtifactCache cache;
  const std::string bad = "PROGRAM NOPE\n      THIS IS NOT FORTRAN(\n      END\n";
  const ArtifactPtr a = cache.get_or_compile(bad, RunSpec{});
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->compiled, nullptr);
  EXPECT_FALSE(a->error.empty());
  const ArtifactPtr b = cache.get_or_compile(bad, RunSpec{});
  EXPECT_EQ(a.get(), b.get());  // no recompile of a known-bad source
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(ServiceCoreTest, SubmitRunsAndSecondRequestHitsEverything) {
  ServiceCore core;
  const std::string src = self_init_source(96, 4);
  const Outcome first = core.submit(src, RunSpec{});
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.artifact_hit);
  EXPECT_EQ(first.nprocs, 4);
  EXPECT_GT(first.result.real_arrays.at("A").size(), 0u);

  const Outcome second = core.submit(src, RunSpec{});
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.artifact_hit);
  // Cross-run sharing: the second run builds no schedules at all.
  EXPECT_EQ(second.result.schedule_misses, 0);
  EXPECT_EQ(second.result.shared_schedule_hits, first.result.schedule_misses);
  EXPECT_EQ(second.result.real_arrays.at("A"),
            first.result.real_arrays.at("A"));
  EXPECT_EQ(core.requests(), 2);
  EXPECT_EQ(core.failures(), 0);
}

TEST(ServiceCoreTest, SourceQuotaRejectsOversizedRequests) {
  ServiceOptions opt;
  opt.max_source_bytes = 16;
  ServiceCore core(opt);
  const Outcome out = core.submit(self_init_source(64, 4), RunSpec{});
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("max_source_bytes"), std::string::npos);
  EXPECT_EQ(core.failures(), 1);
}

TEST(ServiceCoreTest, ProcQuotaRejectsOversizedGrids) {
  ServiceOptions opt;
  opt.max_procs = 2;
  ServiceCore core(opt);
  const Outcome out = core.submit(self_init_source(64, 4), RunSpec{});
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("max_procs"), std::string::npos);
}

TEST(ServiceCoreTest, CompileErrorComesBackAsOutcomeNotThrow) {
  ServiceCore core;
  const Outcome out = core.submit("PROGRAM X\n      FORALL (\n      END\n",
                                  RunSpec{});
  EXPECT_FALSE(out.ok);
  EXPECT_FALSE(out.error.empty());
  EXPECT_EQ(core.failures(), 1);
}

TEST(ServiceCoreTest, CompileOnlySkipsTheRun) {
  ServiceCore core;
  RunSpec spec;
  spec.compile_only = true;
  const Outcome out = core.submit(self_init_source(64, 4), spec);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.nprocs, 4);
  ASSERT_NE(out.compiled, nullptr);
  EXPECT_EQ(out.result.real_arrays.count("A"), 0u);
}

TEST(ServiceStats, RunStatsJsonCarriesTheRunCounters) {
  const Outcome out =
      service::compile_and_run(self_init_source(96, 4), RunSpec{});
  ASSERT_TRUE(out.ok);
  const std::string doc = service::run_stats_json(out);
  EXPECT_NE(doc.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(doc.find("\"artifact_key\":\"" + out.key + "\""), std::string::npos);
  double v = 0;
  ASSERT_TRUE(json_find_number(doc, "nprocs", v));
  EXPECT_EQ(static_cast<int>(v), 4);
  ASSERT_TRUE(json_find_number(doc, "misses", v));
  EXPECT_EQ(static_cast<int>(v), out.result.schedule_misses);
  for (const char* key :
       {"machine", "schedule_cache", "plan_cache", "irregular_cache",
        "comm_plan_cache", "bytes_memcpy_fast_path", "pool_reuses", "native",
        "procs"})
    EXPECT_NE(doc.find(std::string("\"") + key + "\""), std::string::npos)
        << key;
}

TEST(ServiceStats, CoreStatsJsonAggregates) {
  ServiceCore core;
  (void)core.submit(self_init_source(96, 4), RunSpec{});
  (void)core.submit(self_init_source(96, 4), RunSpec{});
  const std::string doc = core.stats_json();
  double v = 0;
  ASSERT_TRUE(json_find_number(doc, "requests", v));
  EXPECT_EQ(static_cast<int>(v), 2);
  for (const char* key : {"artifacts", "shared_schedules", "shared_plan_meta"})
    EXPECT_NE(doc.find(std::string("\"") + key + "\""), std::string::npos)
        << key;
}

}  // namespace
}  // namespace f90d
