// Socket round trips against a live in-process Server (src/service/
// server.hpp): PING, RUN, STATS, SHUTDOWN, and the malformed-request /
// unknown-verb error paths, all through the real client codec.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "service/client.hpp"
#include "service/server.hpp"
#include "support/json.hpp"

namespace f90d {
namespace {

using service::ClientResult;
using service::Server;
using service::ServerOptions;
using service::WireRequest;

std::string self_init_source(int n, int p) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), R"(PROGRAM WIRE
      INTEGER N
      PARAMETER (N = %d)
      REAL A(N)
      REAL B(N)
      INTEGER U(N)
C$ PROCESSORS P(%d)
C$ TEMPLATE T(N)
C$ DISTRIBUTE T(BLOCK)
C$ ALIGN A(I) WITH T(I)
C$ ALIGN B(I) WITH T(I)
      FORALL (I = 1:N) U(I) = MOD(I * 7 + 3, N) + 1
      FORALL (I = 1:N) B(I) = I * 2.0
      FORALL (I = 1:N) A(U(I)) = B(I) + 1.0
      END PROGRAM WIRE
)",
                n, p);
  return buf;
}

/// A running daemon on a fresh socket in a fresh temp directory.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/f90d-server-test-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    opt_.socket_path = dir_ + "/f90dcd.sock";
    opt_.workers = 2;
    server_ = std::make_unique<Server>(opt_);
    std::string err;
    ASSERT_TRUE(server_->start(err)) << err;
  }

  void TearDown() override {
    if (server_) {
      server_->stop();
      server_->wait();
      server_.reset();
    }
    ::unlink(opt_.socket_path.c_str());
    ::rmdir(dir_.c_str());
  }

  std::string dir_;
  ServerOptions opt_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingRoundTrip) {
  WireRequest req;
  req.verb = "PING";
  const ClientResult res = service::request(opt_.socket_path, req);
  ASSERT_TRUE(res.connected) << res.error;
  EXPECT_TRUE(res.ok);
  EXPECT_NE(res.body.find("\"pong\":true"), std::string::npos);
}

TEST_F(ServerTest, RunReturnsTheStatsDocumentAndWarmRequestsHit) {
  WireRequest req;
  req.source = self_init_source(64, 4);
  const ClientResult cold = service::request(opt_.socket_path, req);
  ASSERT_TRUE(cold.connected) << cold.error;
  ASSERT_TRUE(cold.ok) << cold.body;
  EXPECT_NE(cold.body.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(cold.body.find("\"artifact_hit\":false"), std::string::npos);
  double v = 0;
  ASSERT_TRUE(json_find_number(cold.body, "nprocs", v));
  EXPECT_EQ(static_cast<int>(v), 4);

  const ClientResult warm = service::request(opt_.socket_path, req);
  ASSERT_TRUE(warm.connected) << warm.error;
  ASSERT_TRUE(warm.ok) << warm.body;
  EXPECT_NE(warm.body.find("\"artifact_hit\":true"), std::string::npos);
  // The warm run rebuilt nothing: the shared store served every schedule.
  ASSERT_TRUE(json_find_number(warm.body, "misses", v));
  EXPECT_EQ(static_cast<int>(v), 0);
}

TEST_F(ServerTest, RunWithBadSourceAnswersErrWithoutKillingTheServer) {
  WireRequest req;
  req.source = "PROGRAM X\n      FORALL (\n      END\n";
  const ClientResult res = service::request(opt_.socket_path, req);
  ASSERT_TRUE(res.connected) << res.error;
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.body.find("\"ok\":false"), std::string::npos);

  WireRequest ping;
  ping.verb = "PING";
  EXPECT_TRUE(service::request(opt_.socket_path, ping).ok);
}

TEST_F(ServerTest, StatsVerbReportsServiceAggregates) {
  WireRequest run;
  run.source = self_init_source(64, 4);
  ASSERT_TRUE(service::request(opt_.socket_path, run).ok);

  WireRequest req;
  req.verb = "STATS";
  const ClientResult res = service::request(opt_.socket_path, req);
  ASSERT_TRUE(res.connected) << res.error;
  ASSERT_TRUE(res.ok);
  double v = 0;
  ASSERT_TRUE(json_find_number(res.body, "requests", v));
  EXPECT_EQ(static_cast<int>(v), 1);
  EXPECT_NE(res.body.find("\"artifacts\""), std::string::npos);
}

TEST_F(ServerTest, UnknownVerbAnswersErr) {
  WireRequest req;
  req.verb = "FROB";
  const ClientResult res = service::request(opt_.socket_path, req);
  ASSERT_TRUE(res.connected) << res.error;
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.body.find("unknown verb"), std::string::npos);
}

TEST_F(ServerTest, MalformedRequestAnswersErr) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, opt_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string junk = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(service::write_all(fd, junk));
  ::shutdown(fd, SHUT_WR);
  bool ok = true;
  std::string body, err;
  ASSERT_TRUE(service::read_response(fd, ok, body, err)) << err;
  EXPECT_FALSE(ok);
  ::close(fd);
}

TEST_F(ServerTest, ShutdownVerbStopsTheServer) {
  WireRequest req;
  req.verb = "SHUTDOWN";
  const ClientResult res = service::request(opt_.socket_path, req);
  ASSERT_TRUE(res.connected) << res.error;
  EXPECT_TRUE(res.ok);
  server_->wait();  // returns because the server is stopping
  server_.reset();
  // The socket is gone: a fresh connect must fail.
  WireRequest ping;
  ping.verb = "PING";
  EXPECT_FALSE(service::request(opt_.socket_path, ping).connected);
}

}  // namespace
}  // namespace f90d
